"""State deduplication, hash-consing, and certification memoisation.

The PR 3 reduction layer must be *semantics-preserving*: every knob
(``dedup``, ``cert_memo``) changes only how much work the explorers do,
never which outcomes they find.  The tests here pin that equivalence on a
randomized sample of the cycle corpus, the stability/equality laws of the
``cache_key`` methods, and the single-graph certification entry point
against the seed's separate searches.
"""

import random

import pytest

from repro.flat.explorer import FlatConfig, explore_flat
from repro.lang.kinds import Arch
from repro.litmus import generate_cycle_battery, get_test
from repro.promising import (
    CertificationCache,
    ExploreConfig,
    Interner,
    InternPool,
    MachineState,
    Memory,
    Msg,
    can_complete_without_promising,
    certify_thread,
    explore,
    explore_naive,
    find_and_certify,
    initial_tstate,
    machine_transitions,
    promise_step,
)
from repro.lang import DMB_SY, R, load, seq, store


def corpus_sample(count=8, seed=3):
    """Deterministic random sample of small cycle-corpus tests."""
    tests = generate_cycle_battery(
        families=("MP", "SB", "LB", "S", "R", "2+2W", "WRC", "CoRR", "SB-RFI"),
        max_per_family=6,
    )
    return random.Random(seed).sample(tests, count)


class TestDedupPreservesOutcomes:
    @pytest.mark.parametrize("test", corpus_sample(), ids=lambda t: t.name)
    def test_explore_dedup_off_is_identical(self, test):
        locs = tuple(test.observable_locations())
        on = explore(test.program, ExploreConfig(shared_locations=locs))
        off = explore(
            test.program,
            ExploreConfig(shared_locations=locs, dedup=False, cert_memo=False),
        )
        assert set(on.outcomes) == set(off.outcomes), test.name
        assert not on.stats.truncated and not off.stats.truncated

    @pytest.mark.parametrize("test", corpus_sample(count=4, seed=5), ids=lambda t: t.name)
    def test_naive_dedup_off_is_identical(self, test):
        locs = tuple(test.observable_locations())
        on = explore_naive(test.program, ExploreConfig(shared_locations=locs))
        off = explore_naive(
            test.program,
            ExploreConfig(shared_locations=locs, dedup=False, cert_memo=False),
        )
        assert set(on.outcomes) == set(off.outcomes), test.name
        # Without the visited set, symmetric interleavings are re-explored.
        assert off.stats.promise_states >= on.stats.promise_states
        assert on.stats.dedup_hits > 0 and off.stats.dedup_hits == 0

    def test_flat_dedup_off_is_identical(self):
        test = get_test("MP")
        on = explore_flat(test.program, FlatConfig())
        off = explore_flat(test.program, FlatConfig(dedup=False))
        assert set(on.outcomes) == set(off.outcomes)
        assert on.stats.dedup_hits > 0 and off.stats.dedup_hits == 0
        assert off.stats.states > on.stats.states

    def test_cert_memo_alone_preserves_outcomes(self):
        test = get_test("MP+dmb+addr")
        locs = tuple(test.observable_locations())
        memo = explore(test.program, ExploreConfig(shared_locations=locs, cert_memo=True))
        plain = explore(test.program, ExploreConfig(shared_locations=locs, cert_memo=False))
        assert set(memo.outcomes) == set(plain.outcomes)
        # The memo path answers certified/promises/can-finish from one
        # graph build: half the certification invocations.
        assert memo.stats.cert_calls * 2 == plain.stats.cert_calls


class TestCacheKeys:
    def test_tstate_cache_key_is_stable_and_matches_key(self):
        ts = initial_tstate()
        ts.regs["r1"] = (7, 2)
        first = ts.cache_key()
        assert first == ts.key()
        assert ts.cache_key() is first  # cached, not recomputed

    def test_equal_states_reached_differently_share_a_key(self):
        a = initial_tstate().copy()
        a.regs["r1"] = (1, 0)
        a.regs["r2"] = (2, 0)
        b = initial_tstate().copy()
        b.regs["r2"] = (2, 0)
        b.regs["r1"] = (1, 0)
        assert a.cache_key() == b.cache_key()
        assert hash(a) == hash(b) and a == b

    def test_copy_resets_the_cached_key(self):
        ts = initial_tstate()
        _ = ts.cache_key()
        clone = ts.copy()
        clone.vCAP = 9
        assert clone.cache_key() != ts.cache_key()

    def test_memory_cache_key_tracks_messages(self):
        empty = Memory()
        grown, t = empty.append(Msg(0, 1, 0))
        assert empty.cache_key() == ()
        assert grown.cache_key() == (Msg(0, 1, 0),) and t == 1

    def test_interner_shares_identity_and_counts_hits(self):
        interner = Interner()
        # Built dynamically so CPython cannot constant-fold them into one
        # object before the interner ever sees them.
        a = tuple([1, tuple([2, 3])])
        b = tuple([1, tuple([2, 3])])
        assert a is not b
        assert interner.intern(a) is a
        assert interner.intern(b) is a  # equal key collapses to the first
        assert interner.hits == 1 and interner.unique == 1

    def test_machine_state_cache_key_interns_equal_states(self):
        test = get_test("LB")
        pool = InternPool()
        initial = MachineState.initial(test.program, Arch.ARM)
        transitions = machine_transitions(initial)
        # Take the same transition twice via fresh state objects.
        again = machine_transitions(initial)
        key_a = transitions[0].state.cache_key(pool)
        key_b = again[0].state.cache_key(pool)
        assert key_a is key_b
        assert pool.machines.hits >= 1


class TestCertifyThread:
    CONFIGS = [
        ("initial-store", store(0, 5), None),
        ("load-store", seq(load("r1", 8), store(0, R("r1"))), None),
        ("barrier", seq(load("r1", 8), DMB_SY, store(0, 42)), None),
    ]

    @pytest.mark.parametrize("name,stmt,_x", CONFIGS, ids=[c[0] for c in CONFIGS])
    def test_matches_separate_searches(self, name, stmt, _x):
        ts = initial_tstate()
        memory, _ = Memory().append(Msg(8, 1, 9))
        merged = certify_thread(stmt, ts, memory, Arch.ARM, 0)
        separate = find_and_certify(stmt, ts, memory, Arch.ARM, 0)
        assert merged.certified == separate.certified
        assert merged.promises == separate.promises
        assert merged.can_complete == can_complete_without_promising(
            stmt, ts, memory, Arch.ARM, 0
        )

    def test_matches_with_outstanding_promise(self):
        stmt = store(0, 1)
        promised = promise_step(stmt, initial_tstate(), Memory(), Msg(0, 1, 0))
        merged = certify_thread(stmt, promised.tstate, promised.memory, Arch.ARM, 0)
        assert merged.certified
        assert merged.can_complete is True  # the promise is fulfilable in place

    def test_cache_memoises_and_counts(self):
        cache = CertificationCache(Arch.ARM)
        stmt = seq(load("r1", 8), store(0, 42))
        ts = initial_tstate()
        memory = Memory()
        first = cache.certify(stmt, ts, memory, 0)
        second = cache.certify(stmt, ts, memory, 0)
        assert first is second
        assert cache.calls == 2 and cache.hits == 1 and len(cache) == 1

    def test_cache_discriminates_memory_and_tid(self):
        cache = CertificationCache(Arch.ARM)
        stmt = store(0, 1)
        ts = initial_tstate()
        cache.certify(stmt, ts, Memory(), 0)
        grown, _ = Memory().append(Msg(8, 7, 1))
        cache.certify(stmt, ts, grown, 0)
        cache.certify(stmt, ts, Memory(), 1)
        assert cache.hits == 0 and len(cache) == 3
