"""Tests for the distributed exploration layer: queue laws, fleet parity.

The guarantees pinned here: the in-memory and SQLite backends obey the
same claim/lease/complete/requeue laws (fencing tokens make completion
exactly-once even against zombie workers), concurrent claimants never
double-serve an item, a crashed worker's lease is reclaimed and its job
completes exactly once, and a distributed batch is bit-identical — per
job, per report digest, and in folded metrics — to the single-pool run
of the same corpus.
"""

import json
import multiprocessing
import os
import queue as queue_module
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.distrib import (
    DistribConfig,
    HttpWorkBackend,
    MemoryBackend,
    SqliteBackend,
    open_backend,
    run_distributed,
    run_worker,
)
from repro.distrib.backend import (
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_LEASED,
    STATUS_PENDING,
)
from repro.distrib.worker import decode_result, encode_work
from repro.harness import BatchStats, run_fuzz, run_jobs, run_sweep
from repro.harness.jobs import Job, STATUS_ERROR
from repro.harness.report import build_report, outcome_set_digest
from repro.harness.sweep import build_jobs
from repro.litmus import generate_cycle_battery, get_test
from repro.obs.metrics import diff_snapshots, get_registry
from repro.tools.cli import main


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(params=["memory", "sqlite", "http"])
def ledger(request, tmp_path):
    clock = FakeClock()
    if request.param == "memory":
        backend = MemoryBackend(clock=clock)
    elif request.param == "sqlite":
        backend = SqliteBackend(tmp_path / "queue.db", clock=clock)
    else:
        # The same laws must hold over the wire: a clock-controlled memory
        # ledger mounted on a live server, driven through HttpWorkBackend.
        from repro.service import ServiceClient, ServiceConfig
        from repro.service.http import run_server

        ready: "queue_module.Queue[tuple[str, int]]" = queue_module.Queue()
        thread = threading.Thread(
            target=run_server,
            args=(ServiceConfig(workers=1, batch_max_delay=0.0), "127.0.0.1", 0),
            kwargs={
                "on_ready": lambda host, port: ready.put((host, port)),
                "queue_backend": MemoryBackend(clock=clock),
            },
            daemon=True,
        )
        thread.start()
        host, port = ready.get(timeout=30)
        backend = HttpWorkBackend(f"http://{host}:{port}")
        yield backend, clock
        backend.close()
        ServiceClient(host, port).shutdown()
        thread.join(timeout=30)
        return
    yield backend, clock
    backend.close()


def corpus_jobs(n_tests=4, models=("promising", "axiomatic")):
    tests = generate_cycle_battery(max_tests=n_tests)
    return build_jobs(tests, models=models)


# ---------------------------------------------------------------------------
# Backend laws (identical for both implementations)
# ---------------------------------------------------------------------------


class TestBackendLaws:
    def test_enqueue_dedups_by_item_id(self, ledger):
        backend, _ = ledger
        assert backend.enqueue("a", b"one")
        assert not backend.enqueue("a", b"two")
        claim = backend.claim("w", 30)
        assert claim.payload == b"one"

    def test_claims_are_fifo_and_exclusive(self, ledger):
        backend, _ = ledger
        for item in ("a", "b", "c"):
            backend.enqueue(item, item.encode())
        assert backend.claim("w1", 30).item_id == "a"
        assert backend.claim("w2", 30).item_id == "b"
        assert backend.claim("w1", 30).item_id == "c"
        assert backend.claim("w2", 30) is None
        assert backend.counts() == {
            STATUS_PENDING: 0,
            STATUS_LEASED: 3,
            STATUS_DONE: 0,
            STATUS_FAILED: 0,
        }

    def test_fencing_token_gates_every_mutation(self, ledger):
        backend, _ = ledger
        backend.enqueue("a", b"x")
        claim = backend.claim("w1", 30)
        assert claim.token == 1
        # Wrong worker or wrong token: extend/complete/fail all refuse.
        assert not backend.extend("a", "w2", claim.token, 30)
        assert not backend.extend("a", "w1", claim.token + 1, 30)
        assert not backend.complete("a", "w2", claim.token, b"r")
        assert not backend.fail("a", "w1", claim.token + 1, "nope")
        assert backend.extend("a", "w1", claim.token, 30)
        assert backend.complete("a", "w1", claim.token, b"r")
        # Exactly-once: the same holder cannot complete twice.
        assert not backend.complete("a", "w1", claim.token, b"r")

    def test_extend_keeps_a_lease_alive(self, ledger):
        backend, clock = ledger
        backend.enqueue("a", b"x")
        claim = backend.claim("w1", lease_seconds=10)
        clock.advance(8)
        assert backend.extend("a", "w1", claim.token, 10)
        clock.advance(8)  # past the original expiry, inside the extension
        assert backend.requeue_expired() == []
        assert backend.complete("a", "w1", claim.token, b"r")

    def test_expired_lease_is_reclaimed_and_zombie_complete_rejected(self, ledger):
        backend, clock = ledger
        backend.enqueue("a", b"x")
        zombie = backend.claim("dead-worker", lease_seconds=5)
        clock.advance(6)
        assert backend.requeue_expired() == ["a"]
        fresh = backend.claim("live-worker", 30)
        assert fresh.token == zombie.token + 1
        assert fresh.attempts == 2
        # The zombie wakes up late: its token is stale, nothing it does lands.
        assert not backend.complete("a", "dead-worker", zombie.token, b"zombie")
        assert not backend.extend("a", "dead-worker", zombie.token, 30)
        assert backend.complete("a", "live-worker", fresh.token, b"real")
        view = backend.collect(["a"])["a"]
        assert view.status == STATUS_DONE
        assert view.result == b"real"
        assert view.attempts == 2

    def test_reclaim_records_the_dead_worker(self, ledger):
        backend, clock = ledger
        backend.enqueue("a", b"x")
        backend.claim("w-gone", lease_seconds=1)
        clock.advance(2)
        backend.requeue_expired()
        backend.claim("w2", 30)
        clock.advance(40)
        backend.requeue_expired()
        view_error = None
        # Not terminal yet, so collect() hides it; drain via claims.
        claim = backend.claim("w3", 30)
        assert claim.attempts == 3
        backend.fail("a", "w3", claim.token, "boom", requeue=False)
        view_error = backend.collect(["a"])["a"]
        assert view_error.status == STATUS_FAILED
        assert view_error.error == "boom"

    def test_max_attempts_turns_reclaim_terminal(self, ledger):
        backend, clock = ledger
        backend.enqueue("a", b"x")
        for attempt in range(1, backend.max_attempts + 1):
            claim = backend.claim(f"w{attempt}", lease_seconds=1)
            assert claim.attempts == attempt
            clock.advance(2)
            assert backend.requeue_expired() == ["a"]
        assert backend.claim("w-final", 30) is None
        view = backend.collect(["a"])["a"]
        assert view.status == STATUS_FAILED
        assert "lease expired" in view.error

    def test_fail_requeues_until_attempts_run_out(self, ledger):
        backend, _ = ledger
        backend.enqueue("a", b"x")
        claim = backend.claim("w1", 30)
        assert backend.fail("a", "w1", claim.token, "transient")
        assert backend.counts()[STATUS_PENDING] == 1
        again = backend.claim("w1", 30)
        assert again.attempts == 2
        assert backend.fail("a", "w1", again.token, "fatal", requeue=False)
        assert backend.collect(["a"])["a"].status == STATUS_FAILED

    def test_collect_returns_only_terminal_items(self, ledger):
        backend, _ = ledger
        for item in ("p", "l", "d"):
            backend.enqueue(item, b"x")
        backend.claim("w", 30)  # leases "p"
        claim = backend.claim("w", 30)  # leases "l"
        backend.complete("l", "w", claim.token, b"r")
        views = backend.collect(["p", "l", "d", "missing"])
        assert set(views) == {"l"}

    def test_worker_registration_heartbeat_and_throughput(self, ledger):
        backend, clock = ledger
        backend.register_worker("w1", meta={"host": "box"})
        clock.advance(5)
        backend.heartbeat("w1")
        backend.enqueue("a", b"x")
        claim = backend.claim("w1", 30)
        backend.complete("a", "w1", claim.token, b"r")
        (worker,) = backend.workers()
        assert worker.worker_id == "w1"
        assert worker.heartbeat_at == worker.registered_at + 5
        assert worker.jobs_done == 1
        assert worker.meta == {"host": "box"}


class TestConcurrentClaims:
    def test_no_item_served_twice_under_racing_claimants(self, tmp_path):
        backend = SqliteBackend(tmp_path / "queue.db")
        items = [f"item-{i}" for i in range(24)]
        for item in items:
            backend.enqueue(item, item.encode())
        served: list[str] = []
        lock = threading.Lock()

        def claimant(worker_id):
            own = SqliteBackend(tmp_path / "queue.db")
            while True:
                claim = own.claim(worker_id, 30)
                if claim is None:
                    break
                assert own.complete(claim.item_id, worker_id, claim.token, b"r")
                with lock:
                    served.append(claim.item_id)
            own.close()

        threads = [
            threading.Thread(target=claimant, args=(f"w{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(served) == sorted(items)  # each exactly once
        views = backend.collect(items)
        assert all(views[item].status == STATUS_DONE for item in items)
        assert all(views[item].attempts == 1 for item in items)
        backend.close()


class TestOpenBackend:
    def test_memory_urls_share_one_ledger_per_name(self):
        a = open_backend("memory://shared-test")
        b = open_backend("memory://shared-test")
        c = open_backend("memory://other-test")
        assert a is b
        assert a is not c

    def test_sqlite_urls_and_bare_paths(self, tmp_path):
        by_url = open_backend(f"sqlite:///{tmp_path}/q.db")
        assert isinstance(by_url, SqliteBackend)
        by_path = open_backend(str(tmp_path / "q2.db"))
        assert isinstance(by_path, SqliteBackend)
        by_url.close()
        by_path.close()

    def test_unknown_scheme_is_rejected(self):
        with pytest.raises(ValueError):
            open_backend("redis://localhost/0")
        with pytest.raises(ValueError):
            open_backend("sqlite://")

    def test_backend_objects_pass_through(self):
        backend = MemoryBackend()
        assert open_backend(backend) is backend

    def test_http_urls_dispatch_without_connecting(self):
        # Nothing listens on this port: the constructor must not connect
        # (workers open backends before the coordinator's server is known
        # to be reachable), only the first op does.
        backend = open_backend("http://127.0.0.1:9")
        assert isinstance(backend, HttpWorkBackend)
        backend.close()
        with pytest.raises(ValueError):
            HttpWorkBackend("http:///nohost")


# ---------------------------------------------------------------------------
# Worker loop
# ---------------------------------------------------------------------------


class TestWorker:
    def test_worker_executes_and_caches(self, tmp_path):
        backend = MemoryBackend()
        jobs = build_jobs([get_test("MP"), get_test("SB")], models=("promising",))
        for job in jobs:
            backend.enqueue(job.fingerprint(), encode_work(job))
        stats = run_worker(
            backend,
            tmp_path / "cache",
            worker_id="w1",
            max_jobs=len(jobs),
            poll_seconds=0.01,
        )
        assert stats.computed == len(jobs)
        assert stats.cache_hits == 0
        views = backend.collect([job.fingerprint() for job in jobs])
        for job in jobs:
            view = views[job.fingerprint()]
            assert view.served_from == "computed"
            result = decode_result(view.result)
            assert result.ok
            assert result.fingerprint == job.fingerprint()

        # Re-enqueue the same fingerprints on a fresh queue: the shared
        # cache now serves every one without recomputation.
        warm = MemoryBackend()
        for job in jobs:
            warm.enqueue(job.fingerprint(), encode_work(job))
        stats2 = run_worker(
            warm,
            tmp_path / "cache",
            worker_id="w2",
            max_jobs=len(jobs),
            poll_seconds=0.01,
        )
        assert stats2.computed == 0
        assert stats2.cache_hits == len(jobs)
        assert all(
            v.served_from == "cache"
            for v in warm.collect([j.fingerprint() for j in jobs]).values()
        )

    def test_undecodable_payload_fails_and_requeues(self):
        backend = MemoryBackend(max_attempts=2)
        backend.enqueue("junk", b"not a pickle")
        stats = run_worker(backend, None, worker_id="w1", max_jobs=2, poll_seconds=0.01)
        assert stats.failures == 2
        view = backend.collect(["junk"])["junk"]
        assert view.status == STATUS_FAILED
        assert "UnpicklingError" in view.error or "Error" in view.error

    def test_idle_exit_retires_a_drained_worker(self):
        backend = MemoryBackend()
        start = time.monotonic()
        stats = run_worker(
            backend, None, worker_id="w1", idle_exit_seconds=0.05, poll_seconds=0.01
        )
        assert stats.claimed == 0
        assert time.monotonic() - start < 10

    def test_heartbeat_extends_the_running_lease(self, tmp_path):
        # A job that outlives its lease must not be reclaimed from a live
        # worker: the keeper thread extends the lease mid-execution.
        backend = SqliteBackend(tmp_path / "q.db")
        job = Job(test=get_test("IRIW+addrs"), model="promising")
        backend.enqueue(job.fingerprint(), encode_work(job))

        reclaimed: list[str] = []
        done = threading.Event()

        def reaper():
            while not done.wait(0.05):
                reclaimed.extend(backend.requeue_expired())

        thread = threading.Thread(target=reaper)
        thread.start()
        try:
            stats = run_worker(
                backend,
                None,
                worker_id="w1",
                max_jobs=1,
                lease_seconds=0.2,
                poll_seconds=0.01,
            )
        finally:
            done.set()
            thread.join()
        assert stats.computed == 1
        assert stats.lost_leases == 0
        assert reclaimed == []
        backend.close()


# ---------------------------------------------------------------------------
# Coordinator: crash reclamation, parity, teardown
# ---------------------------------------------------------------------------


class TestCrashReclamation:
    def test_dead_claimant_item_is_reclaimed_and_completes_exactly_once(self, tmp_path):
        # A worker that claimed an item and crashed (no heartbeats ever
        # again) is simulated by claiming with a short lease and walking
        # away; the coordinator requeues it and the fleet completes it.
        queue = tmp_path / "queue.db"
        jobs = build_jobs([get_test("MP"), get_test("SB")], models=("promising",))
        pre = SqliteBackend(queue)
        victim = jobs[0]
        pre.enqueue(victim.fingerprint(), encode_work(victim))
        zombie = pre.claim("crashed-worker", lease_seconds=0.3)
        assert zombie is not None

        run = run_distributed(
            jobs,
            config=DistribConfig(backend_url=str(queue), workers=1, poll_seconds=0.02),
            cache=tmp_path / "cache",
        )
        assert [r.status for r in run.results] == ["ok", "ok"]
        assert run.info["lease_reclaims"] == 1
        # Exactly once: the reclaimed item shows one real completion on
        # its second attempt, and the zombie's stale token can't land.
        view = pre.collect([victim.fingerprint()])[victim.fingerprint()]
        assert view.status == STATUS_DONE
        assert view.attempts == 2
        assert not pre.complete(
            victim.fingerprint(), "crashed-worker", zombie.token, b"late"
        )
        serial = run_jobs(jobs)
        assert [outcome_set_digest(r.outcomes) for r in run.results] == [
            outcome_set_digest(r.outcomes) for r in serial
        ]
        pre.close()

    def test_killed_worker_process_mid_job_is_recovered(self, tmp_path):
        # Real crash-kill: a separate worker process claims under a short
        # lease with heartbeats disabled, gets SIGKILLed mid-job, and the
        # coordinator's fleet completes the item exactly once.
        queue = tmp_path / "queue.db"
        job = Job(test=get_test("IRIW+addrs"), model="promising")
        backend = SqliteBackend(queue)
        backend.enqueue(job.fingerprint(), encode_work(job))
        script = (
            "import sys\n"
            "from repro.distrib import SqliteBackend\n"
            "backend = SqliteBackend(sys.argv[1])\n"
            "claim = backend.claim('doomed', lease_seconds=0.5)\n"
            "assert claim is not None\n"
            "print('claimed', flush=True)\n"
            "import time; time.sleep(600)\n"
        )
        env = dict(os.environ, PYTHONPATH=str(Path(__file__).parent.parent / "src"))
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(queue)],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            assert proc.stdout.readline().strip() == "claimed"
            proc.kill()
            proc.wait()
            run = run_distributed(
                [job],
                config=DistribConfig(backend_url=str(queue), workers=1, poll_seconds=0.02),
            )
        finally:
            if proc.poll() is None:
                proc.kill()
        assert run.results[0].ok
        assert run.info["lease_reclaims"] == 1
        view = backend.collect([job.fingerprint()])[job.fingerprint()]
        assert view.status == STATUS_DONE
        assert view.attempts == 2
        assert view.worker != "doomed"
        backend.close()

    def test_terminally_failed_item_surfaces_as_error_result(self):
        backend = MemoryBackend(max_attempts=1)
        jobs = build_jobs([get_test("MP")], models=("promising",))
        # Poison the queue entry so the worker's decode fails; with one
        # attempt allowed the item goes terminal and the coordinator
        # reports it as an error result instead of hanging.
        backend.enqueue(jobs[0].fingerprint(), b"poison")
        run = run_distributed(
            jobs, config=DistribConfig(backend_url=backend, workers=1, poll_seconds=0.01)
        )
        assert run.results[0].status == STATUS_ERROR
        assert run.results[0].error
        assert run.info["jobs_failed"] == 1


class TestDistributedParity:
    def test_distributed_equals_pooled_over_random_corpus_slice(self, tmp_path):
        import random

        tests = generate_cycle_battery(max_per_family=3)
        tests = random.Random(8).sample(tests, min(6, len(tests)))
        jobs = build_jobs(tests, models=("promising", "axiomatic"))
        pooled = run_jobs(jobs, workers=2, cache=tmp_path / "pool-cache")
        run = run_distributed(
            jobs,
            config=DistribConfig(backend_url=str(tmp_path / "q.db"), workers=3),
            cache=tmp_path / "distrib-cache",
        )
        assert [r.status for r in run.results] == [r.status for r in pooled]
        assert [outcome_set_digest(r.outcomes) for r in run.results] == [
            outcome_set_digest(r.outcomes) for r in pooled
        ]
        # The schema-v3 reports agree row-for-row on outcome digests.
        report_a = build_report(jobs, pooled)
        report_b = build_report(jobs, run.results)
        assert [j["outcome_digest"] for j in report_a["jobs"]] == [
            j["outcome_digest"] for j in report_b["jobs"]
        ]
        assert report_a["mismatches"] == report_b["mismatches"] == []

    def test_http_fleet_matches_pooled_with_no_shared_filesystem(self, tmp_path):
        # The acceptance bar of the API v2 PR: forked workers that talk to
        # the queue only over HTTP — no shared cache directory, no shared
        # SQLite file — produce a report digest-identical to the pooled run.
        from repro.service import ServiceClient, ServiceConfig
        from repro.service.http import run_server

        jobs = corpus_jobs(n_tests=3, models=("promising", "axiomatic"))
        pooled = run_jobs(jobs, workers=2, cache=tmp_path / "pool-cache")

        ready: "queue_module.Queue[tuple[str, int]]" = queue_module.Queue()
        thread = threading.Thread(
            target=run_server,
            args=(ServiceConfig(workers=1, batch_max_delay=0.0), "127.0.0.1", 0),
            kwargs={"on_ready": lambda host, port: ready.put((host, port))},
            daemon=True,
        )
        thread.start()
        host, port = ready.get(timeout=30)
        try:
            run = run_distributed(
                jobs,
                config=DistribConfig(backend_url=f"http://{host}:{port}", workers=2),
            )
        finally:
            ServiceClient(host, port).shutdown()
            thread.join(timeout=30)
        assert run.info["workers_spawned"] == 2
        assert run.info["jobs_computed"] == len(jobs)
        report_a = build_report(jobs, pooled)
        report_b = build_report(jobs, run.results)
        assert [j["outcome_digest"] for j in report_a["jobs"]] == [
            j["outcome_digest"] for j in report_b["jobs"]
        ]
        assert report_a["mismatches"] == report_b["mismatches"] == []

    def test_folded_metrics_match_the_single_process_run(self, tmp_path):
        # The per-job counters a distributed run folds back must equal the
        # increments the same corpus produces in-process.
        jobs = corpus_jobs(n_tests=3, models=("promising",))
        registry = get_registry()

        def executed_delta(before, after):
            delta = diff_snapshots(before, after)
            return {
                key: value
                for key, value in sorted(delta.items())
                if "jobs_executed_total" in str(key)
            }

        before = registry.snapshot()
        run_jobs(jobs)
        serial_delta = executed_delta(before, registry.snapshot())
        assert serial_delta  # the corpus really ran

        before = registry.snapshot()
        run_distributed(
            jobs, config=DistribConfig(backend_url=str(tmp_path / "q.db"), workers=2)
        )
        distrib_delta = executed_delta(before, registry.snapshot())
        assert distrib_delta == serial_delta

    def test_local_cache_hits_and_in_batch_duplicates_never_hit_the_queue(self, tmp_path):
        jobs = build_jobs([get_test("MP"), get_test("SB")], models=("promising",))
        cache = tmp_path / "cache"
        run_jobs(jobs, cache=cache)  # warm every fingerprint
        duplicated = jobs + [jobs[0]]
        stats = BatchStats()
        run = run_distributed(
            duplicated,
            config=DistribConfig(backend_url="memory://warm-batch", workers=1),
            cache=cache,
            stats=stats,
        )
        assert run.info["jobs_enqueued"] == 0
        assert run.info["local_cache_hits"] == 3
        assert all(r.cached for r in run.results)
        assert stats.executed == 0

    def test_sweep_and_fuzz_route_through_distrib(self, tmp_path):
        tests = [get_test("MP"), get_test("SB")]
        sweep = run_sweep(
            tests,
            ("promising", "axiomatic"),
            distrib=DistribConfig(backend_url="memory://sweep-route", workers=2),
        )
        assert sweep.ok
        assert sweep.report["extra"]["distrib"]["jobs_computed"] == 4
        baseline = run_sweep(tests, ("promising", "axiomatic"))
        assert [j["outcome_digest"] for j in sweep.report["jobs"]] == [
            j["outcome_digest"] for j in baseline.report["jobs"]
        ]

        fuzz = run_fuzz(
            max_tests=2,
            models=("promising", "axiomatic"),
            distrib=DistribConfig(backend_url="memory://fuzz-route", workers=2),
        )
        assert fuzz.ok
        assert fuzz.report["extra"]["distrib"]["jobs_computed"] == fuzz.report["n_jobs"]

    def test_cli_distributed_sweep(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        argv = ["sweep", "--max-tests", "4", "--models", "promising"]
        argv += ["--distributed", "--workers", "2"]
        argv += ["--backend-url", str(tmp_path / "queue.db"), "--report", str(report)]
        code = main(argv)
        assert code == 0
        data = json.loads(report.read_text())
        assert data["ok"]
        assert data["extra"]["distrib"]["workers_spawned"] == 2

    def test_cli_work_drains_a_queue(self, tmp_path, capsys):
        queue = tmp_path / "queue.db"
        backend = SqliteBackend(queue)
        job = Job(test=get_test("MP"), model="promising")
        backend.enqueue(job.fingerprint(), encode_work(job))
        argv = ["work", "--backend-url", str(queue), "--cache-dir", str(tmp_path / "cache")]
        argv += ["--max-jobs", "1", "--worker-id", "cli-worker"]
        code = main(argv)
        assert code == 0
        out = capsys.readouterr().out
        assert "cli-worker" in out and "1 computed" in out
        view = backend.collect([job.fingerprint()])[job.fingerprint()]
        assert view.status == STATUS_DONE
        backend.close()


class TestTeardown:
    def test_no_orphaned_workers_after_a_clean_run(self, tmp_path):
        jobs = build_jobs([get_test("MP")], models=("promising",))
        run_distributed(
            jobs, config=DistribConfig(backend_url=str(tmp_path / "q.db"), workers=2)
        )
        assert multiprocessing.active_children() == []

    def test_fleet_death_is_detected_not_hung(self):
        # Spawned thread-fleet workers that exit (stop event pre-set)
        # with items outstanding must surface as an error, not a hang.
        backend = MemoryBackend()
        jobs = build_jobs([get_test("MP")], models=("promising",))

        from repro.distrib import coordinator as coord

        class PrestoppedFleet(coord._Fleet):
            def spawn(self, *args, **kwargs):
                self.stop_event.set()
                super().spawn(*args, **kwargs)

        original = coord._Fleet
        coord._Fleet = PrestoppedFleet
        try:
            with pytest.raises(RuntimeError, match="outstanding"):
                run_distributed(
                    jobs,
                    config=DistribConfig(
                        backend_url=backend, workers=1, poll_seconds=0.01
                    ),
                )
        finally:
            coord._Fleet = original

    def test_sigint_coordinator_leaves_no_orphans(self, tmp_path):
        # Ctrl-C the coordinator process mid-batch: the finally-path fleet
        # teardown (plus daemonic workers) must reap every child.
        script = r"""
import os, signal, sys, threading, multiprocessing, time
from repro.harness.sweep import build_jobs
from repro.litmus import generate_cycle_battery
from repro.distrib import DistribConfig, run_distributed

jobs = build_jobs(generate_cycle_battery(max_per_family=4), models=("promising", "axiomatic"))

def interrupt_once_fleet_is_up():
    while not multiprocessing.active_children():
        time.sleep(0.01)
    pids = [p.pid for p in multiprocessing.active_children()]
    print("FLEET " + " ".join(map(str, pids)), flush=True)
    os.kill(os.getpid(), signal.SIGINT)

threading.Thread(target=interrupt_once_fleet_is_up, daemon=True).start()
try:
    run_distributed(jobs, config=DistribConfig(backend_url=sys.argv[1], workers=2))
    print("FINISHED", flush=True)
except KeyboardInterrupt:
    print("INTERRUPTED", flush=True)
"""
        env = dict(os.environ, PYTHONPATH=str(Path(__file__).parent.parent / "src"))
        out = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path / "q.db")],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        fleet_lines = [
            line for line in out.stdout.splitlines() if line.startswith("FLEET ")
        ]
        assert fleet_lines, out.stdout + out.stderr
        pids = [int(p) for p in fleet_lines[0].split()[1:]]
        assert pids
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            live = [p for p in pids if _pid_alive(p)]
            if not live:
                break
            time.sleep(0.05)
        assert not [p for p in pids if _pid_alive(p)], "orphaned fleet workers"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True
