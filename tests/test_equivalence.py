"""Experimental equivalence of the promising and axiomatic models.

The paper proves the two models equivalent in Coq (Theorems 6.1/6.2) and
additionally checks the executable tool against the axiomatic models on
thousands of litmus tests (§7).  These tests reproduce the experimental
check: on the catalogue and on a generated battery, the *projected outcome
sets* of the two implementations must coincide exactly — not just the
verdict of the named condition.
"""

import pytest

from repro.lang.kinds import Arch
from repro.litmus import all_tests, generate_battery, run_axiomatic, run_promising
from repro.litmus.generators import (
    READ_LINKAGES,
    READ_TO_WRITE_LINKAGES,
    WRITE_LINKAGES,
    generate_lb,
    generate_mp,
    generate_sb,
)

CATALOGUE = [t for t in all_tests() if t.program.n_threads <= 3]


def _outcomes_agree(test, arch):
    promising = run_promising(test, arch)
    axiomatic = run_axiomatic(test, arch)
    assert set(promising.outcomes) == set(axiomatic.outcomes), (
        f"{test.name} ({arch}): models disagree\n"
        f"promising only: {set(promising.outcomes) - set(axiomatic.outcomes)}\n"
        f"axiomatic only: {set(axiomatic.outcomes) - set(promising.outcomes)}"
    )


@pytest.mark.parametrize("test", CATALOGUE, ids=[t.name for t in CATALOGUE])
def test_catalogue_outcome_sets_agree_on_arm(test):
    _outcomes_agree(test, Arch.ARM)


@pytest.mark.parametrize("test", CATALOGUE, ids=[t.name for t in CATALOGUE])
def test_catalogue_outcome_sets_agree_on_riscv(test):
    _outcomes_agree(test, Arch.RISCV)


# A slice of the generated battery (the full battery runs in the benchmark
# harness; here we keep a deterministic, fast selection).
GENERATED = (
    list(generate_mp(read_links=READ_LINKAGES[:5], write_links=WRITE_LINKAGES[:3]))
    + list(generate_sb(links=WRITE_LINKAGES[:3]))
    + list(generate_lb(links=READ_TO_WRITE_LINKAGES[:4]))
)


@pytest.mark.parametrize("test", GENERATED, ids=[t.name for t in GENERATED])
def test_generated_battery_agreement_on_arm(test):
    _outcomes_agree(test, Arch.ARM)


def test_generate_battery_is_deterministic_and_sizeable():
    battery = generate_battery()
    names = [t.name for t in battery]
    assert len(names) == len(set(names))
    assert len(battery) > 150
    assert generate_battery(max_tests=10)[0].name == battery[0].name
