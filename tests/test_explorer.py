"""Tests for the exhaustive explorers, the machine, and the interactive tool."""

import pytest

from repro.lang import LocationEnv, R, load, make_program, seq, store, while_
from repro.lang.kinds import Arch
from repro.litmus import get_test, run_promising
from repro.promising import (
    ExploreConfig,
    InteractiveSession,
    MachineState,
    explore,
    explore_naive,
    find_witness,
    machine_transitions,
    run_deterministic,
)


def lb_program():
    env = LocationEnv()
    t0 = seq(load("r1", env["x"]), store(env["y"], 1))
    t1 = seq(load("r2", env["y"]), store(env["x"], 1))
    return make_program([t0, t1], env=env, name="LB"), env


class TestPromiseFirstVersusNaive:
    """Theorem 7.1: promise-first exploration reaches the same outcomes."""

    @pytest.mark.parametrize(
        "name", ["MP", "MP+dmbs", "SB", "LB", "LB+datas", "CoRR", "MP+rel+acq", "2+2W"]
    )
    def test_same_outcomes(self, name):
        test = get_test(name)
        optimised = run_promising(test, Arch.ARM)
        naive = run_promising(test, Arch.ARM, naive=True)
        assert set(optimised.outcomes) == set(naive.outcomes), name

    def test_naive_explores_more_states(self):
        program, _env = lb_program()
        fast = explore(program, ExploreConfig())
        slow = explore_naive(program, ExploreConfig())
        assert slow.stats.promise_states > fast.stats.promise_states


class TestExploreMechanics:
    def test_loop_bounding_applies(self):
        env = LocationEnv()
        spin = seq(while_(R("r").eq(0), load("r", env["flag"])), store(env["out"], 1))
        program = make_program([spin, store(env["flag"], 1)], env=env)
        result = explore(program, ExploreConfig(loop_bound=2))
        assert len(result.outcomes) > 0
        assert not result.stats.truncated

    def test_max_states_truncation_reported(self):
        program, _env = lb_program()
        result = explore(program, ExploreConfig(max_states=1))
        assert result.stats.truncated

    def test_stats_describe_mentions_key_counters(self):
        program, _env = lb_program()
        result = explore(program, ExploreConfig())
        text = result.stats.describe()
        assert "promise states" in text and "final memories" in text
        assert result.describe().startswith(f"{len(result.outcomes)} outcomes")

    def test_shared_locations_survive_localisation(self):
        env = LocationEnv()
        private = env["private"]
        program = make_program([store(private, 3), load("r1", env["x"])], env=env)
        kept = explore(program, ExploreConfig(shared_locations=(private,)))
        assert all(o.mem(private) == 3 for o in kept.outcomes)

    def test_for_arch_preserves_every_field(self):
        # ``for_arch`` must be a dataclasses.replace, not a field-by-field
        # copy: a config field added later has to survive the harness
        # re-targeting an arch instead of being silently reset.
        import dataclasses

        config = ExploreConfig(
            loop_bound=5,
            cert_fuel=123,
            max_states=77,
            localise=False,
            shared_locations=(0, 8),
        )
        retargeted = config.for_arch(Arch.RISCV)
        assert retargeted.arch is Arch.RISCV
        for field in dataclasses.fields(ExploreConfig):
            if field.name == "arch":
                continue
            assert getattr(retargeted, field.name) == getattr(config, field.name), field.name

    def test_arm_and_riscv_differ_only_where_expected(self):
        test = get_test("MP+dmbs")
        arm = run_promising(test, Arch.ARM)
        riscv = run_promising(test, Arch.RISCV)
        assert set(arm.outcomes) == set(riscv.outcomes)


class TestMachine:
    def test_initial_state_and_finality(self):
        program, _env = lb_program()
        state = MachineState.initial(program, Arch.ARM)
        assert not state.is_final
        assert state.n_threads == 2

    def test_machine_transitions_are_certified_promises_and_reads(self):
        program, _env = lb_program()
        state = MachineState.initial(program, Arch.ARM)
        kinds = {t.step.kind for t in machine_transitions(state)}
        assert "read" in kinds and "promise" in kinds

    def test_run_deterministic_reaches_final_state(self):
        program, _env = lb_program()
        state = MachineState.initial(program, Arch.ARM)
        final = run_deterministic(state, lambda ts: ts[0])
        assert final.is_final
        assert final.outcome().n_threads == 2


class TestInteractive:
    def test_stepping_and_undo(self):
        program, _env = lb_program()
        session = InteractiveSession(program, Arch.ARM)
        assert session.enabled
        before = session.state.key()
        session.step(0)
        assert session.state.key() != before
        session.undo()
        assert session.state.key() == before

    def test_run_until_completion(self):
        program, _env = lb_program()
        session = InteractiveSession(program, Arch.ARM)
        assert session.run_until(lambda state: state.is_final)
        assert session.finished
        assert session.outcome().n_threads == 2
        assert "execution finished" in session.show()

    def test_reset(self):
        program, _env = lb_program()
        session = InteractiveSession(program, Arch.ARM)
        session.step(0)
        session.reset()
        assert not session.trace

    def test_invalid_step_index(self):
        program, _env = lb_program()
        session = InteractiveSession(program, Arch.ARM)
        with pytest.raises(IndexError):
            session.step(999)

    def test_undo_on_fresh_session(self):
        program, _env = lb_program()
        session = InteractiveSession(program, Arch.ARM)
        with pytest.raises(RuntimeError):
            session.undo()

    def test_find_witness_for_relaxed_lb(self):
        program, _env = lb_program()
        trace = find_witness(
            program, lambda o: o.reg(0, "r1") == 1 and o.reg(1, "r2") == 1, Arch.ARM
        )
        assert trace is not None
        # The witness must start by promising (writes-first, Theorem 7.1 flavour).
        assert any(entry.transition.step.kind == "promise" for entry in trace)
        # Replaying the trace through a fresh session reproduces the outcome.
        session = InteractiveSession(program, Arch.ARM)
        session.run_trace([entry.index for entry in trace])
        assert session.finished
        outcome = session.outcome()
        assert outcome.reg(0, "r1") == 1 and outcome.reg(1, "r2") == 1

    def test_find_witness_returns_none_for_forbidden_outcome(self):
        test = get_test("MP+dmbs")
        witness = find_witness(test.program, test.condition.holds, Arch.ARM)
        assert witness is None
