"""Tests for the Flat-style baseline model."""

import pytest

from repro.flat import FlatConfig, explore_flat
from repro.lang import LocationEnv, R, if_, load, make_program, seq, store
from repro.lang.kinds import Arch
from repro.litmus import get_test, run_flat
from repro.tools import compare_models

#: Shapes on which the approximate Flat-style model must agree with the
#: architectural verdict (and hence with the promising model).
CORE_SHAPES = [
    "MP", "MP+dmbs", "MP+dmb+addr", "MP+rel+acq", "MP+dmb+ctrlisb",
    "SB", "SB+dmbs", "LB", "LB+datas", "LB+ctrls",
    "CoRR", "CoWW", "CoWR", "PPOCA", "2+2W", "2+2W+dmbs",
]


@pytest.mark.parametrize("name", CORE_SHAPES)
def test_flat_matches_architectural_verdict(name):
    test = get_test(name)
    result = run_flat(test)
    assert result.verdict is test.expected_verdict(Arch.ARM), name


@pytest.mark.parametrize("name", ["MP", "SB", "LB", "CoRR"])
def test_flat_outcomes_contained_in_promising(name):
    """The baseline under-approximates at worst; it must not invent outcomes."""
    test = get_test(name)
    comparison = compare_models(test.program, Arch.ARM, include_flat=True, include_axiomatic=False)
    assert comparison.flat_subset_of_promising


def test_flat_explores_more_states_than_promising():
    test = get_test("MP")
    flat = explore_flat(test.program, FlatConfig())
    from repro.promising import ExploreConfig, explore

    promising = explore(test.program, ExploreConfig())
    assert flat.stats.states > promising.stats.promise_states


def test_flat_speculation_and_restart_are_exercised():
    env = LocationEnv()
    t0 = seq(store(env["x"], 1))
    t1 = seq(
        load("r1", env["x"]),
        # The branch direction depends on the racy read, so one of the two
        # speculated fetch paths must be squashed in some executions.
        if_(R("r1").eq(1), load("r2", env["y"]), load("r3", env["y"])),
    )
    program = make_program([t0, t1], env=env)
    result = explore_flat(program, FlatConfig())
    assert result.stats.restarts > 0
    assert len(result.outcomes) > 0


def test_flat_exclusives_monitor():
    test = get_test("LSE-atomicity")
    result = run_flat(test)
    assert result.verdict is test.expected_verdict(Arch.ARM)


def test_flat_window_size_limits_state():
    test = get_test("MP")
    small = explore_flat(test.program, FlatConfig(window_size=1))
    large = explore_flat(test.program, FlatConfig(window_size=8))
    assert small.stats.states <= large.stats.states
    # A window of one instruction is effectively in-order execution, which
    # still terminates and produces outcomes (a strict subset is fine).
    assert len(small.outcomes) >= 1


def test_flat_truncation_reported():
    test = get_test("MP")
    result = explore_flat(test.program, FlatConfig(max_states=1))
    assert result.stats.truncated


def test_restart_squashing_an_exclusive_load_clears_the_reservation():
    """A mis-speculated LDAXR must take its monitor with it (PR 5 bugfix).

    T1's branch is never taken (y stays 0), but its speculated path
    contains a second load-exclusive of x.  If that squashed load's
    reservation survived the restart, T1's store-exclusive could pair
    with a load that architecturally never happened and *succeed* across
    T0's intervening write — observable as x=5 with r0=0, an outcome the
    promising reference forbids (found by random-walk sampling of the
    3-thread CAS spinlock, where it manifests as a mutual-exclusion
    violation).
    """
    from repro.lang.kinds import VSUCC
    from repro.promising import ExploreConfig, explore

    env = LocationEnv()
    x, y = env["x"], env["y"]
    t0 = store(x, 7)
    t1 = seq(
        load("r0", x, exclusive=True),
        load("r1", y),
        if_(R("r1").eq(1), load("r2", x, exclusive=True)),
        store(x, 5, exclusive=True, succ_reg="rs"),
    )
    program = make_program([t0, t1], env=env)

    def non_atomic_sc(outcome):
        # STXR claims success and its write survives, yet its paired
        # LDAXR read the initial memory from before T0's write.
        return outcome.mem(x) == 5 and outcome.reg(1, "r0") == 0 and outcome.reg(1, "rs") == VSUCC

    flat = explore_flat(program, FlatConfig())
    assert not any(non_atomic_sc(o) for o in flat.outcomes)
    promising = explore(program, ExploreConfig(shared_locations=(x, y)))
    assert not any(non_atomic_sc(o) for o in promising.outcomes)
