"""Tests for the sweep harness: scheduler, cache, fingerprints, reports.

The guarantees pinned here are the ones the rest of the codebase builds
on: parallel and serial sweeps are interchangeable, the persistent cache
round-trips results and invalidates on configuration changes, one bad job
never poisons a batch, and the JSON report schema stays stable.
"""

import json

import pytest

from repro.harness import (
    Job,
    REPORT_SCHEMA_VERSION,
    ResultCache,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    build_report,
    execute_job,
    result_from_json,
    result_to_json,
    run_jobs,
    run_sweep,
)
from repro.lang.kinds import Arch
from repro.litmus import check_agreement, generate_battery, get_test
from repro.promising import ExploreConfig
from repro.tools.cli import main
from repro.workloads import spinlock_rust


def battery(n=8):
    return generate_battery(max_tests=n)


# ---------------------------------------------------------------------------
# Jobs and fingerprints
# ---------------------------------------------------------------------------


class TestJobs:
    def test_unknown_model_is_rejected(self):
        with pytest.raises(ValueError):
            Job(test=get_test("MP"), model="nosuch")

    def test_execute_matches_litmus_runner_projection(self):
        test = get_test("MP+dmb+addr")
        result = execute_job(Job(test=test, model="promising"))
        assert result.ok
        assert result.verdict is test.expected_verdict(Arch.ARM)
        assert result.matches_expectation is True
        assert result.stats["promise_states"] > 0

    def test_fingerprint_is_stable_and_config_sensitive(self):
        test = get_test("MP")
        base = Job(test=test, model="promising")
        assert base.fingerprint() == Job(test=test, model="promising").fingerprint()
        # Any semantic knob must invalidate: config, arch, model, test.
        assert (
            Job(test=test, model="promising",
                explore_config=ExploreConfig(loop_bound=3)).fingerprint()
            != base.fingerprint()
        )
        assert Job(test=test, model="promising", arch=Arch.RISCV).fingerprint() != base.fingerprint()
        assert Job(test=test, model="axiomatic").fingerprint() != base.fingerprint()
        assert Job(test=get_test("SB"), model="promising").fingerprint() != base.fingerprint()

    def test_fingerprint_distinguishes_same_named_locations(self):
        # Two MemEq conditions over swapped addresses render identically
        # ("x=1 /\ y=0") but observe different memory; their fingerprints
        # must differ or the cache would serve one test's verdict to the
        # other.
        from repro.litmus.conditions import MemEq, cond_and
        from repro.litmus.test import LitmusTest

        program = get_test("SB").program
        cond_a = cond_and(MemEq(0, 1, "x"), MemEq(8, 0, "y"))
        cond_b = cond_and(MemEq(8, 1, "x"), MemEq(0, 0, "y"))
        assert repr(cond_a) == repr(cond_b)
        job_a = Job(test=LitmusTest("T", program, cond_a), model="promising")
        job_b = Job(test=LitmusTest("T", program, cond_b), model="promising")
        assert job_a.fingerprint() != job_b.fingerprint()

    def test_partial_projection_override_derives_the_other_side(self):
        test = get_test("MP")
        job = Job(test=test, model="promising", project_locations=(0,))
        regs, locs = job.observables()
        assert locs == [0]
        # Registers still come from the condition, not an empty override.
        assert regs == {tid: sorted(n) for tid, n in test.observable_registers().items()}

    def test_for_program_covers_all_observables(self):
        workload = spinlock_rust(2, 1, 1)
        job = Job.for_program(workload.program, "promising")
        regs, locs = job.observables()
        assert set(locs) == set(workload.program.loc_names)
        assert all(regs[tid] for tid in workload.program.thread_ids)
        result = execute_job(job)
        assert result.ok and workload.check(result.outcomes)

    def test_result_json_round_trip(self):
        result = execute_job(Job(test=get_test("MP"), model="promising"))
        clone = result_from_json(json.loads(json.dumps(result_to_json(result))))
        assert clone.name == result.name
        assert clone.verdict is result.verdict
        assert set(clone.outcomes) == set(result.outcomes)
        assert clone.stats == result.stats


# ---------------------------------------------------------------------------
# Scheduler: parallel == serial, faults stay contained
# ---------------------------------------------------------------------------


class TestScheduler:
    def test_parallel_agreement_report_matches_serial(self):
        tests = battery(10)
        serial = check_agreement(tests, Arch.ARM, workers=1)
        parallel = check_agreement(tests, Arch.ARM, workers=4)
        assert serial.total == parallel.total == 10
        assert serial.agreeing == parallel.agreeing
        assert serial.disagreements == parallel.disagreements

    def test_parallel_results_are_bit_identical(self):
        jobs = [Job(test=t, model="promising") for t in battery(6)]
        serial = run_jobs(jobs, workers=1)
        parallel = run_jobs(jobs, workers=3)
        for a, b in zip(serial, parallel):
            assert a.name == b.name
            assert a.verdict is b.verdict
            assert set(a.outcomes) == set(b.outcomes)
            assert a.stats == b.stats

    @pytest.mark.parametrize("workers", [1, 2])
    def test_timeout_does_not_poison_the_batch(self, workers):
        # The first and last jobs finish in a few milliseconds; the middle
        # one needs hundreds and must surface as a timeout result.
        quick = get_test("MP")
        slow = Job.for_program(spinlock_rust(2, 1).program, "promising", name="slow")
        jobs = [Job(test=quick, model="promising"), slow, Job(test=quick, model="axiomatic")]
        results = run_jobs(jobs, workers=workers, timeout=0.05)
        statuses = [r.status for r in results]
        assert statuses[1] == STATUS_TIMEOUT
        assert results[1].outcomes is None
        assert statuses[0] == STATUS_OK and statuses[2] == STATUS_OK

    def test_content_identical_jobs_execute_once(self, monkeypatch):
        import repro.harness.scheduler as scheduler_module

        calls = []
        original = scheduler_module._invoke

        def counting(payload):
            calls.append(payload[0].test.name)
            return original(payload)

        monkeypatch.setattr(scheduler_module, "_invoke", counting)
        from repro.litmus.test import LitmusTest

        base = get_test("MP")
        twin = LitmusTest("MP-twin", base.program, base.condition, base.expected)
        results = run_jobs([Job(test=base, model="promising"), Job(test=twin, model="promising")])
        assert calls == ["MP"]  # the content-identical twin was not re-run
        assert [r.name for r in results] == ["MP", "MP-twin"]
        assert set(results[0].outcomes) == set(results[1].outcomes)
        assert results[1].expected is twin.expected_verdict(Arch.ARM)

    def test_cache_write_failure_does_not_sink_the_batch(self, tmp_path, monkeypatch):
        import repro.harness.cache as cache_module

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(cache_module.os, "replace", broken_replace)
        cache = ResultCache(tmp_path)
        results = run_jobs([Job(test=t, model="promising") for t in battery(3)], cache=cache)
        assert all(r.ok for r in results)
        assert len(cache) == 0  # nothing persisted, nothing crashed

    def test_error_is_captured_per_job(self):
        from repro.lang import make_program
        from repro.litmus.conditions import TrueCond
        from repro.litmus.test import LitmusTest

        broken = LitmusTest("broken", make_program([None]), TrueCond())
        jobs = [Job(test=broken, model="promising"), Job(test=get_test("SB"), model="promising")]
        results = run_jobs(jobs, workers=1)
        assert results[0].status == STATUS_ERROR
        assert results[0].error
        assert results[1].status == STATUS_OK


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------


class TestCache:
    def test_cold_miss_then_warm_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = [Job(test=t, model="promising") for t in battery(5)]
        cold = run_jobs(jobs, cache=cache)
        assert cache.hits == 0 and cache.misses == 5 and len(cache) == 5
        warm = run_jobs(jobs, cache=cache)
        assert cache.hits == 5
        for a, b in zip(cold, warm):
            assert not a.cached and b.cached
            assert a.verdict is b.verdict
            assert set(a.outcomes) == set(b.outcomes)

    def test_config_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        test = get_test("MP")
        run_jobs([Job(test=test, model="promising")], cache=cache)
        rerun = run_jobs(
            [Job(test=test, model="promising", explore_config=ExploreConfig(loop_bound=3))],
            cache=cache,
        )
        assert not rerun[0].cached
        assert cache.misses == 2 and len(cache) == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = Job(test=get_test("MP"), model="promising")
        run_jobs([job], cache=cache)
        for entry in tmp_path.glob("*/*.json"):
            entry.write_text("{not json")
        result = run_jobs([job], cache=cache)[0]
        assert not result.cached and result.ok

    def test_schema_drifted_entry_is_a_miss(self, tmp_path):
        # Valid JSON with the right fingerprint but an undecodable payload
        # (e.g. written by an older schema) must degrade to a miss, not
        # crash the sweep.
        cache = ResultCache(tmp_path)
        job = Job(test=get_test("MP"), model="promising")
        run_jobs([job], cache=cache)
        entry = next(tmp_path.glob("*/*.json"))
        entry.write_text(json.dumps({"fingerprint": job.fingerprint(), "arch": "vax"}))
        result = run_jobs([job], cache=cache)[0]
        assert not result.cached and result.ok

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_jobs([Job(test=t, model="promising") for t in battery(3)], cache=cache)
        assert cache.clear() == 3 and len(cache) == 0

    def test_hit_reflects_incoming_annotations(self, tmp_path):
        # Name and expected verdict are outside the fingerprint; a recalled
        # result must carry the *current* job's annotations, so fixing a
        # catalogue expectation is not masked by a stale cache entry.
        from repro.litmus.test import LitmusTest, Verdict

        cache = ResultCache(tmp_path)
        original = get_test("MP")
        run_jobs([Job(test=original, model="promising")], cache=cache)
        flipped = Verdict.ALLOWED if original.expected_verdict(Arch.ARM) is Verdict.FORBIDDEN else Verdict.FORBIDDEN
        relabelled = LitmusTest(
            "MP-renamed", original.program, original.condition, {Arch.ARM: flipped}
        )
        hit = run_jobs([Job(test=relabelled, model="promising")], cache=cache)[0]
        assert hit.cached
        assert hit.name == "MP-renamed"
        assert hit.expected is flipped
        assert hit.matches_expectation is False

    def test_store_failures_are_counted_and_reported(self, tmp_path):
        # A cache that cannot persist results (read-only/full volume) must
        # be visible in the sweep report next to the hit rate, not just
        # show up as a mysteriously cold rerun.
        cache = ResultCache(tmp_path)
        tests = battery(2)
        for test in tests:
            job = Job(test=test, model="promising")
            # Occupy the shard path with a *file* so the entry's mkdir
            # fails deterministically (works even when running as root,
            # unlike a chmod-based read-only directory).
            shard = tmp_path / job.fingerprint()[:2]
            if not shard.exists():
                shard.write_text("not a directory")
        sweep = run_sweep(tests, ("promising",), Arch.ARM, cache=cache)
        assert sweep.ok
        assert cache.store_failures == len(tests)
        assert sweep.report["cache"]["store_failures"] == len(tests)
        assert "store failures" in sweep.describe()
        # And a healthy cache reports zero.
        healthy = ResultCache(tmp_path / "healthy")
        sweep = run_sweep(tests, ("promising",), Arch.ARM, cache=healthy)
        assert healthy.store_failures == 0
        assert sweep.report["cache"]["store_failures"] == 0

    def test_warm_agreement_run_is_much_faster(self, tmp_path):
        tests = battery(16)
        cache = ResultCache(tmp_path)
        cold = check_agreement(tests, Arch.ARM, cache=cache)
        warm = check_agreement(tests, Arch.ARM, cache=cache)
        assert cold.agreement_rate == warm.agreement_rate == 1.0
        assert cache.hits == 32 and cache.misses == 32
        # The warm run does no model work at all; a loose factor keeps this
        # robust on noisy CI (the ≥5x assertion lives in the bench tier).
        assert warm.elapsed_seconds * 2 <= cold.elapsed_seconds

    def test_agreement_accepts_an_iterator(self):
        report = check_agreement(t for t in battery(4))
        assert report.total == 4 and report.agreement_rate == 1.0


# ---------------------------------------------------------------------------
# Reports and the sweep entry points
# ---------------------------------------------------------------------------

REPORT_KEYS = {
    "schema_version", "name", "generated_unix", "n_jobs", "models", "archs",
    "status_counts", "truncated_jobs", "sampled_jobs", "strategies",
    "dedup", "ok", "cache", "compute_seconds", "wall_seconds", "mismatches",
    "jobs",
}

JOB_ENTRY_KEYS = {
    "name", "model", "arch", "status", "verdict", "expected",
    "matches_expectation", "n_outcomes", "outcome_digest", "elapsed_seconds",
    "cached", "truncated", "strategy", "sampled", "samples",
    "coverage_estimate", "warning", "error", "fingerprint", "stats",
}


class TestReport:
    def test_schema_is_stable(self):
        jobs = [Job(test=t, model=m) for t in battery(3) for m in ("promising", "axiomatic")]
        results = run_jobs(jobs)
        report = build_report(jobs, results, name="unit")
        assert report["schema_version"] == REPORT_SCHEMA_VERSION
        assert set(report) == REPORT_KEYS
        assert all(set(entry) == JOB_ENTRY_KEYS for entry in report["jobs"])
        assert report["ok"] is True and report["mismatches"] == []
        json.dumps(report)  # must be JSON-serializable as-is

    def test_run_sweep_writes_artifact(self, tmp_path):
        out = tmp_path / "report.json"
        sweep = run_sweep(
            battery(4), ("promising", "axiomatic"), Arch.ARM,
            workers=2, cache=tmp_path / "cache", report_path=out,
        )
        assert sweep.ok
        artifact = json.loads(out.read_text())
        assert artifact["n_jobs"] == 8
        assert artifact["extra"]["workers"] == 2
        assert artifact["cache"]["hit_rate"] == 0.0

    def test_cli_sweep_subcommand(self, tmp_path, capsys):
        out = tmp_path / "out.json"
        code = main([
            "sweep", "--max-tests", "4", "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"), "--report", str(out),
            "--models", "promising,axiomatic",
        ])
        assert code == 0
        assert "cache hit rate" in capsys.readouterr().out
        artifact = json.loads(out.read_text())
        assert artifact["status_counts"] == {"ok": 8}
        assert artifact["mismatches"] == []

    def test_cli_sweep_rejects_unknown_model(self):
        assert main(["sweep", "--models", "bogus"]) == 2

    def test_truncated_runs_are_not_reported_as_mismatches(self):
        # A budget-capped exploration has an incomplete outcome set; it
        # must not be compared against a complete one as a disagreement.
        from repro.harness import find_mismatches
        from repro.flat import FlatConfig

        test = get_test("MP")
        jobs = [
            Job(test=test, model="promising"),
            Job(test=test, model="flat", flat_config=FlatConfig(max_states=1)),
        ]
        results = run_jobs(jobs)
        assert results[1].stats["truncated"] is True
        assert set(results[0].outcomes) != set(results[1].outcomes)
        assert find_mismatches(jobs, results) == []

    def test_truncated_result_carries_a_warning_and_unverified_verdict(self):
        # A max_states hit must not masquerade as a verified verdict: the
        # result is flagged, the expectation check abstains, and both the
        # per-job row and the report-level count carry the warning.
        test = get_test("MP")
        job = Job(test=test, model="promising", explore_config=ExploreConfig(max_states=1))
        result = execute_job(job)
        assert result.ok and result.truncated
        assert result.warning and "truncated" in result.warning
        assert result.matches_expectation is None
        assert "[TRUNCATED]" in result.describe()
        report = build_report([job], [result])
        assert report["truncated_jobs"] == 1
        entry = report["jobs"][0]
        assert entry["truncated"] is True and entry["warning"]
        # An untruncated run of the same test stays clean.
        clean = execute_job(Job(test=test, model="promising"))
        assert not clean.truncated and clean.warning is None
        assert clean.matches_expectation is True

    def test_truncation_warning_reaches_sweep_describe(self):
        sweep = run_sweep(
            [get_test("MP")], ("promising",), Arch.ARM,
            explore_config=ExploreConfig(max_states=1),
        )
        assert sweep.report["truncated_jobs"] == 1
        assert "WARNING" in sweep.describe() and "truncated" in sweep.describe()

    def test_dedup_counters_are_aggregated_into_reports(self):
        jobs = [Job(test=t, model=m) for t in battery(2) for m in ("promising", "flat")]
        results = run_jobs(jobs)
        report = build_report(jobs, results)
        dedup = report["dedup"]
        assert dedup["cert_calls"] > 0
        assert dedup["dedup_hits"] >= 0 and dedup["interned_keys"] > 0
        # And the human rendering mentions the counters.
        from repro.harness import describe_dedup

        text = describe_dedup(report)
        assert "cert memo" in text and "interning" in text

    def test_outcome_digest_tracks_outcome_sets(self):
        from repro.harness import outcome_set_digest

        a = execute_job(Job(test=get_test("MP"), model="promising"))
        b = execute_job(Job(test=get_test("MP"), model="axiomatic"))
        c = execute_job(Job(test=get_test("SB"), model="promising"))
        assert outcome_set_digest(a.outcomes) == outcome_set_digest(b.outcomes)
        assert outcome_set_digest(a.outcomes) != outcome_set_digest(c.outcomes)
        assert outcome_set_digest(None) is None

    def test_distinct_tests_sharing_a_name_are_not_cross_compared(self):
        # The generated battery and the hand-written catalogue both contain
        # e.g. an LB+data+po; mismatch detection must group by test
        # identity, not name, or it would compare different programs.
        generated = next(t for t in generate_battery() if t.name == "LB+data+po")
        catalogue = get_test("LB+data+po")
        assert generated is not catalogue
        sweep = run_sweep([generated, catalogue], ("promising", "axiomatic"), Arch.ARM)
        assert sweep.ok, sweep.mismatches


# ---------------------------------------------------------------------------
# Differential fuzzing
# ---------------------------------------------------------------------------


class TestFuzz:
    def _small_fuzz(self, **kwargs):
        from repro.harness import run_fuzz

        return run_fuzz(
            families=("MP",), max_tests=2,
            models=("promising", "axiomatic"), archs=(Arch.ARM,), **kwargs,
        )

    def test_agreeing_corpus_has_no_counterexamples(self, tmp_path):
        fuzz = self._small_fuzz(report_path=tmp_path / "fuzz.json")
        assert fuzz.ok
        assert fuzz.counterexamples == []
        info = fuzz.report["extra"]["fuzz"]
        assert info["corpus_size"] == 2 and info["families"] == ["MP"]
        assert json.loads((tmp_path / "fuzz.json").read_text())["mismatches"] == []

    def test_doctored_disagreement_is_a_counterexample_with_source(self):
        from repro.harness import build_fuzz_jobs, differential_mismatches
        from repro.litmus import generate_cycle_battery
        from repro.outcomes import OutcomeSet

        tests = generate_cycle_battery(families=("MP",), max_tests=2)
        jobs = build_fuzz_jobs(tests, ("promising", "axiomatic"), (Arch.ARM,))
        results = [execute_job(job) for job in jobs]
        outcomes = list(results[1].outcomes)
        results[1].outcomes = OutcomeSet(outcomes[:-1])  # drop one outcome
        counterexamples, _explained = differential_mismatches(jobs, results)
        assert len(counterexamples) == 1
        ce = counterexamples[0]
        assert ce["kind"] == "outcome-sets-differ"
        assert ce["models"] == ["promising", "axiomatic"]
        assert "cycle MP" in ce["source"] and "exists" in ce["source"]

    def test_flat_subset_policy(self):
        # Flat lacking a promising outcome is explained; flat inventing
        # one is a counterexample.
        from repro.harness import build_fuzz_jobs, differential_mismatches
        from repro.litmus import generate_cycle_battery
        from repro.outcomes import Outcome, OutcomeSet

        tests = generate_cycle_battery(families=("MP",), max_tests=1)
        jobs = build_fuzz_jobs(tests, ("promising", "flat"), (Arch.ARM,))
        results = [execute_job(job) for job in jobs]
        assert set(results[1].outcomes) <= set(results[0].outcomes)
        missing = OutcomeSet(list(results[1].outcomes)[:-1])
        results[1].outcomes = missing
        counterexamples, explained = differential_mismatches(jobs, results)
        assert counterexamples == [] and explained == 1
        invented = Outcome.make([{"r1": 9}, {"r1": 9, "r2": 9}], {})
        results[1].outcomes = OutcomeSet(list(missing) + [invented])
        counterexamples, _explained = differential_mismatches(jobs, results)
        assert [ce["kind"] for ce in counterexamples] == ["subset-violated"]

    def test_expected_verdict_mismatch_is_a_counterexample(self):
        # A single-model fuzz against an oracle-stamped corpus must still
        # fail loudly when the model contradicts the expectation.
        import dataclasses

        from repro.harness import build_fuzz_jobs, differential_mismatches
        from repro.litmus import generate_cycle_battery
        from repro.litmus.test import Verdict

        test = generate_cycle_battery(families=("CoRR",), max_tests=1)[0]
        # CoRR violates coherence: every model forbids it. Stamp the
        # opposite expectation to simulate a model/oracle disagreement.
        wrong = dataclasses.replace(test, expected={Arch.ARM: Verdict.ALLOWED})
        jobs = build_fuzz_jobs([wrong], ("promising",), (Arch.ARM,))
        results = [execute_job(job) for job in jobs]
        counterexamples, _explained = differential_mismatches(jobs, results)
        assert [ce["kind"] for ce in counterexamples] == ["expected-verdict-mismatch"]
        assert counterexamples[0]["models"] == ["promising", "expected"]

    def test_cli_fuzz_subcommand(self, tmp_path, capsys):
        out = tmp_path / "fuzz.json"
        code = main([
            "fuzz", "--families", "CoRR", "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"), "--report", str(out),
            "--expected",
        ])
        assert code == 0
        assert "counterexamples: 0" in capsys.readouterr().out
        artifact = json.loads(out.read_text())
        assert artifact["extra"]["fuzz"]["families"] == ["CoRR"]
        assert artifact["mismatches"] == []
        # Every stamped expectation matched.
        assert all(job["matches_expectation"] for job in artifact["jobs"])

    def test_cli_fuzz_rejects_bad_arguments(self):
        assert main(["fuzz", "--models", "bogus"]) == 2
        assert main(["fuzz", "--families", "NOPE"]) == 2
        assert main(["fuzz", "--archs", "x86"]) == 2
        # Empty lists would run a vacuous 0-job battery and exit 0.
        assert main(["fuzz", "--models", ","]) == 2
        assert main(["fuzz", "--archs", ","]) == 2
        assert main(["sweep", "--models", ","]) == 2

    def test_equal_but_distinct_test_objects_still_pair_up(self):
        # Grouping must be by content, not object identity: jobs built
        # from two separate battery generations (equal tests, distinct
        # objects) would otherwise compare nothing — a vacuous pass.
        from repro.harness import build_fuzz_jobs, differential_mismatches
        from repro.litmus import generate_cycle_battery
        from repro.outcomes import OutcomeSet

        first = generate_cycle_battery(families=("MP",), max_tests=1)
        second = generate_cycle_battery(families=("MP",), max_tests=1)
        assert first[0] is not second[0]
        jobs = build_fuzz_jobs(first, ("promising",), (Arch.ARM,)) + build_fuzz_jobs(
            second, ("axiomatic",), (Arch.ARM,)
        )
        results = [execute_job(job) for job in jobs]
        assert differential_mismatches(jobs, results) == ([], 0)
        results[1].outcomes = OutcomeSet(list(results[1].outcomes)[:-1])
        counterexamples, _explained = differential_mismatches(jobs, results)
        assert [ce["kind"] for ce in counterexamples] == ["outcome-sets-differ"]

    def test_all_timeouts_fail_the_battery(self):
        # A battery that never ran to completion proved nothing: it must
        # not report success just because no counterexample surfaced.
        # The deadline must expire before even the smallest warm-cache job
        # can finish (well under a millisecond now), so make it absurdly
        # small rather than merely small.
        fuzz = self._small_fuzz(timeout=1e-07)
        assert fuzz.report["status_counts"] == {STATUS_TIMEOUT: 4}
        assert fuzz.counterexamples == []
        assert not fuzz.ok
