"""Tests for the ARMv8/RISC-V assembly front ends and the litmus format."""

import pytest

from repro.isa import (
    Armv8ParseError,
    RiscvParseError,
    StructurisationError,
    ThreadSource,
    assemble_thread,
    assembly_line_count,
    structurise,
)
from repro.isa.armv8 import parse_thread as parse_arm
from repro.isa.armv8 import normalise_register as arm_reg
from repro.isa.riscv import parse_thread as parse_rv
from repro.isa.riscv import normalise_register as rv_reg
from repro.isa.ir import Branch, StraightLine, ThreadIr
from repro.lang import (
    Fence,
    If,
    Isb,
    Load,
    ReadKind,
    Store,
    WriteKind,
    count_memory_accesses,
    iter_statements,
    statement_registers,
)
from repro.lang.kinds import Arch
from repro.litmus.format import LitmusFormatError, parse_litmus
from repro.litmus import run_promising


def arm_stmts(text):
    ir = parse_arm(text)
    return [i.stmt for i in ir.instructions if isinstance(i, StraightLine)]


def rv_stmts(text):
    ir = parse_rv(text)
    return [i.stmt for i in ir.instructions if isinstance(i, StraightLine)]


class TestArmParser:
    def test_register_normalisation(self):
        assert arm_reg("W5") == "X5"
        assert arm_reg("x11") == "X11"
        assert arm_reg("WZR") == "XZR"
        with pytest.raises(Armv8ParseError):
            arm_reg("X42")
        with pytest.raises(Armv8ParseError):
            arm_reg("SP")

    def test_mov_and_alu(self):
        mov, add = arm_stmts("MOV X0, #5\nADD X1, X0, X2")
        assert mov.reg == "X0"
        assert statement_registers(add) == {"X0", "X1", "X2"}

    @pytest.mark.parametrize(
        "mnemonic,kind,exclusive",
        [("LDR", ReadKind.PLN, False), ("LDAR", ReadKind.ACQ, False),
         ("LDAPR", ReadKind.WACQ, False), ("LDXR", ReadKind.PLN, True),
         ("LDAXR", ReadKind.ACQ, True)],
    )
    def test_load_kinds(self, mnemonic, kind, exclusive):
        (stmt,) = arm_stmts(f"{mnemonic} X0, [X1]")
        assert isinstance(stmt, Load)
        assert stmt.kind is kind and stmt.exclusive is exclusive

    @pytest.mark.parametrize(
        "line,kind,exclusive",
        [("STR X0, [X1]", WriteKind.PLN, False), ("STLR X0, [X1]", WriteKind.REL, False),
         ("STXR W2, X0, [X1]", WriteKind.PLN, True), ("STLXR W2, X0, [X1]", WriteKind.REL, True)],
    )
    def test_store_kinds(self, line, kind, exclusive):
        (stmt,) = arm_stmts(line)
        assert isinstance(stmt, Store)
        assert stmt.kind is kind and stmt.exclusive is exclusive
        if exclusive:
            assert stmt.succ_reg == "X2"

    def test_addressing_modes(self):
        imm, reg = arm_stmts("LDR X0, [X1, #8]\nLDR X2, [X1, X3]")
        assert statement_registers(imm) == {"X0", "X1"}
        assert statement_registers(reg) == {"X1", "X2", "X3"}

    def test_barriers(self):
        dmb_sy, dmb_ld, dmb_st, isb = arm_stmts("DMB SY\nDMB LD\nDMB ST\nISB")
        assert isinstance(dmb_sy, Fence) and isinstance(isb, Isb)
        assert dmb_ld.before.name == "R"
        assert dmb_st.after.name == "W"

    def test_zero_register_reads_as_zero(self):
        (stmt,) = arm_stmts("STR XZR, [X1]")
        assert stmt.data.value == 0

    def test_cmp_and_conditional_branch(self):
        ir = parse_arm("CMP X0, #3\nB.EQ out\nMOV X1, #1\nout: NOP")
        assert isinstance(ir.instructions[1], Branch)
        assert ir.labels["out"] == 3

    def test_cbz_cbnz(self):
        ir = parse_arm("CBZ X0, end\nCBNZ X1, end\nend: NOP")
        assert all(isinstance(i, Branch) for i in ir.instructions[:2])

    def test_unknown_instruction_rejected(self):
        with pytest.raises(Armv8ParseError):
            parse_arm("LDADD X0, X1, [X2]")

    def test_comments_and_semicolons(self):
        ir = parse_arm("MOV X0, #1 // set up\n; \nSTR X0, [X1]")
        assert len(ir.instructions) == 2


class TestRiscvParser:
    def test_register_normalisation(self):
        assert rv_reg("a0") == "x10"
        assert rv_reg("t0") == "x5"
        assert rv_reg("zero") == "x0"
        with pytest.raises(RiscvParseError):
            rv_reg("x99")

    def test_loads_and_stores(self):
        lw, sw = rv_stmts("lw a0, 0(a1)\nsw a0, 8(a1)")
        assert isinstance(lw, Load) and isinstance(sw, Store)
        assert statement_registers(sw) == {"x10", "x11"}

    def test_lr_sc_orderings(self):
        plain, acq = rv_stmts("lr.w a0, (a1)\nlr.w.aq a0, (a1)")
        assert plain.kind is ReadKind.PLN and plain.exclusive
        assert acq.kind is ReadKind.ACQ
        (sc,) = rv_stmts("sc.w.rl a2, a0, (a1)")
        assert sc.exclusive and sc.kind is WriteKind.REL and sc.succ_reg == "x12"

    def test_fences(self):
        f, tso, nop = rv_stmts("fence rw, w\nfence.tso\nfence.i")
        assert isinstance(f, Fence) and f.after.name == "W"
        assert count_memory_accesses(tso) == 0

    def test_branches_and_labels(self):
        ir = parse_rv("beq a0, a1, done\nbnez a2, done\nj done\ndone: nop")
        assert sum(isinstance(i, Branch) for i in ir.instructions) == 3
        assert ir.labels["done"] == 3

    def test_x0_writes_discarded(self):
        (stmt,) = rv_stmts("li x0, 5")
        assert stmt.reg == "_discard"

    def test_unknown_instruction_rejected(self):
        with pytest.raises(RiscvParseError):
            parse_rv("amoswap.w a0, a1, (a2)")


class TestStructurisation:
    def test_forward_branch_becomes_if(self):
        stmt = assemble_thread("CBZ X0, skip\nMOV X1, #1\nskip: NOP", Arch.ARM)
        assert any(isinstance(node, If) for node in iter_statements(stmt))

    def test_backward_branch_bounded(self):
        text = "loop: LDR X0, [X1]\nCBZ X0, loop\nMOV X2, #1"
        bounded = assemble_thread(text, Arch.ARM, unroll_bound=3)
        assert count_memory_accesses(bounded) == 3

    def test_missing_label_raises(self):
        ir = ThreadIr((Branch("nowhere", None),), {})
        with pytest.raises(StructurisationError):
            structurise(ir)

    def test_bad_unroll_bound(self):
        with pytest.raises(ValueError):
            structurise(ThreadIr((), {}), unroll_bound=0)

    def test_register_initialisation_prefix(self):
        stmt = assemble_thread(ThreadSource("LDR X0, [X1]", {"X1": 64}), Arch.ARM)
        assert "X1" in statement_registers(stmt)

    def test_assembly_line_count(self):
        assert assembly_line_count(["MOV X0, #1\nSTR X0, [X1]", "label:\nNOP"]) == 3


class TestLitmusFormat:
    MP = """AArch64 MP+dmb+addr
{
  0:X1=x; 0:X3=y;
  1:X1=y; 1:X3=x;
}
 P0          | P1             ;
 MOV W0,#1   | LDR W0,[X1]    ;
 STR W0,[X1] | EOR W2,W0,W0   ;
 DMB SY      | LDR W4,[X3,W2] ;
 STR W0,[X3] |                ;
exists (1:X0=1 /\\ 1:X4=0)
"""

    def test_parse_and_run(self):
        parsed = parse_litmus(self.MP)
        assert parsed.arch is Arch.ARM
        assert parsed.test.name == "MP+dmb+addr"
        assert parsed.test.program.n_threads == 2
        result = run_promising(parsed.test, parsed.arch)
        assert result.verdict.value == "forbidden"

    def test_initial_memory_values(self):
        text = self.MP.replace("1:X3=x;", "1:X3=x; x=5;")
        parsed = parse_litmus(text)
        locs = {name: loc for loc, name in parsed.test.program.loc_names.items()}
        assert parsed.test.program.initial_value(locs["x"]) == 5

    def test_riscv_header(self):
        text = """RISCV LB
{ 0:a0=x; 1:a0=y; }
 P0           | P1           ;
 lw a1, 0(a0) | lw a1, 0(a0) ;
exists (0:a1=0)
"""
        parsed = parse_litmus(text)
        assert parsed.arch is Arch.RISCV

    def test_missing_condition_rejected(self):
        with pytest.raises(LitmusFormatError):
            parse_litmus("AArch64 T\n{ }\n P0 ;\n NOP ;\n")

    def test_unknown_arch_rejected(self):
        with pytest.raises(LitmusFormatError):
            parse_litmus("X86 T\n{ }\n P0 ;\n NOP ;\nexists (0:X0=0)")

    def test_malformed_condition_register_rejected(self):
        # An un-normalisable register must be a parse error, not silently
        # kept: it would never match the program's registers (evaluating
        # as 0) and would skew the test's content fingerprint relative to
        # the same test written with canonical names.
        text = self.MP.replace("exists (1:X0=1", "exists (1:Q99=1")
        with pytest.raises(LitmusFormatError, match="malformed register"):
            parse_litmus(text)

    def test_out_of_range_condition_register_rejected(self):
        text = self.MP.replace("exists (1:X0=1", "exists (1:X77=1")
        with pytest.raises(LitmusFormatError, match="malformed register"):
            parse_litmus(text)
