"""Unit tests for statements, programs and transformations."""

import pytest

from repro.lang import (
    DMB_LD,
    DMB_SY,
    FenceSet,
    LocationEnv,
    R,
    ReadKind,
    Seq,
    Skip,
    Store,
    WriteKind,
    assign,
    count_memory_accesses,
    fence_tso,
    has_loops,
    if_,
    iter_statements,
    load,
    localise_private_locations,
    make_program,
    private_locations,
    rename_registers_stmt,
    seq,
    statement_constants,
    statement_registers,
    statement_size,
    store,
    unroll_loops,
    while_,
)


class TestConstructors:
    def test_seq_right_nested(self):
        stmt = seq(assign("a", 1), assign("b", 2), assign("c", 3))
        assert isinstance(stmt, Seq)
        assert isinstance(stmt.second, Seq)

    def test_seq_drops_skips(self):
        assert seq(Skip(), assign("a", 1), Skip()) == assign("a", 1)

    def test_seq_empty_is_skip(self):
        assert seq() == Skip()

    def test_load_coerces_address(self):
        stmt = load("r1", 8)
        assert isinstance(stmt.addr, type(load("r1", 8).addr))

    def test_store_exclusive_requires_success_register(self):
        with pytest.raises(ValueError):
            Store(load("r1", 0).addr, load("r1", 0).addr, WriteKind.PLN, True, None)

    def test_if_default_else_is_skip(self):
        stmt = if_(R("r1").eq(1), assign("a", 1))
        assert stmt.orelse == Skip()

    def test_barrier_aliases(self):
        assert DMB_SY.before is FenceSet.RW and DMB_SY.after is FenceSet.RW
        assert DMB_LD.before is FenceSet.R

    def test_fence_tso_is_two_fences(self):
        stmt = fence_tso()
        kinds = [type(node).__name__ for node in iter_statements(stmt)]
        assert kinds.count("Fence") == 2


class TestKinds:
    def test_read_kind_lattice(self):
        assert ReadKind.ACQ.is_acquire and ReadKind.ACQ.is_strong_acquire
        assert ReadKind.WACQ.is_acquire and not ReadKind.WACQ.is_strong_acquire
        assert not ReadKind.PLN.is_acquire

    def test_write_kind_lattice(self):
        assert WriteKind.REL.is_release and WriteKind.REL.is_strong_release
        assert WriteKind.WREL.is_release and not WriteKind.WREL.is_strong_release

    def test_fence_set_inclusion(self):
        assert FenceSet.RW.includes(FenceSet.R)
        assert FenceSet.RW.includes(FenceSet.W)
        assert not FenceSet.R.includes(FenceSet.W)


class TestQueries:
    def test_statement_registers(self):
        stmt = seq(load("r1", 0), store(8, R("r1") + R("r2")), if_(R("r3").eq(0), Skip()))
        assert statement_registers(stmt) == {"r1", "r2", "r3"}

    def test_statement_constants(self):
        stmt = seq(load("r1", 16), store(8, 42))
        assert {8, 16, 42} <= set(statement_constants(stmt))

    def test_count_memory_accesses(self):
        stmt = seq(load("r1", 0), store(0, 1), assign("a", 2), DMB_SY)
        assert count_memory_accesses(stmt) == 2

    def test_statement_size_counts_nodes(self):
        assert statement_size(seq(assign("a", 1), assign("b", 2))) == 3

    def test_has_loops(self):
        assert has_loops(while_(R("r").eq(0), Skip()))
        assert not has_loops(seq(assign("a", 1)))


class TestTransforms:
    def test_unroll_removes_loops(self):
        stmt = while_(R("r").eq(0), load("r", 0))
        unrolled = unroll_loops(stmt, 3)
        assert not has_loops(unrolled)
        assert count_memory_accesses(unrolled) == 3

    def test_unroll_zero_gives_skip(self):
        assert unroll_loops(while_(R("r").eq(0), Skip()), 0) == Skip()

    def test_unroll_negative_rejected(self):
        with pytest.raises(ValueError):
            unroll_loops(Skip(), -1)

    def test_rename_registers_stmt(self):
        stmt = seq(load("r1", 0), store(0, R("r1")))
        renamed = rename_registers_stmt(stmt, {"r1": "t1"})
        assert statement_registers(renamed) == {"t1"}

    def test_private_locations_detected(self):
        env = LocationEnv()
        shared, private = env["shared"], env["private"]
        t0 = seq(store(private, 1), load("r1", private), store(shared, R("r1")))
        t1 = load("r2", shared)
        program = make_program([t0, t1], env=env)
        assert private_locations(program) == {private}

    def test_private_locations_conservative_on_dynamic_addresses(self):
        env = LocationEnv()
        t0 = store(R("rp") + 0, 1)
        program = make_program([t0, load("r1", env["x"])], env=env)
        assert private_locations(program) == frozenset()

    def test_localise_rewrites_private_accesses(self):
        env = LocationEnv()
        shared, private = env["shared"], env["private"]
        t0 = seq(store(private, 7), load("r1", private), store(shared, R("r1")))
        program = make_program([t0, load("r2", shared)], env=env, initial={private: 3})
        rewritten, localised = localise_private_locations(program)
        assert localised == {private}
        assert count_memory_accesses(rewritten.threads[0]) == 1
        assert private not in rewritten.initial

    def test_localise_respects_extra_shared(self):
        env = LocationEnv()
        private = env["private"]
        program = make_program([store(private, 1), Skip()], env=env)
        rewritten, localised = localise_private_locations(program, extra_shared=[private])
        assert localised == frozenset()
        assert rewritten.threads == program.threads


class TestProgram:
    def test_program_queries(self):
        env = LocationEnv()
        program = make_program([seq(load("r1", env["x"]), store(env["y"], 5))], env=env, name="t")
        assert program.n_threads == 1
        assert program.registers() == {"r1"}
        assert 5 in program.constants()
        assert program.memory_access_count() == 2
        assert program.loc_name(env["x"]) == "x"
        assert program.initial_value(env["x"]) == 0

    def test_location_env_allocation(self):
        env = LocationEnv(stride=8)
        a, b = env["a"], env["b"]
        assert b - a == 8
        assert env["a"] == a  # stable on re-lookup
        assert "a" in env and len(env) == 2

    def test_location_env_array(self):
        env = LocationEnv(stride=8)
        cells = env.array("buf", 3)
        assert cells == [cells[0], cells[0] + 8, cells[0] + 16]

    def test_location_env_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            LocationEnv(stride=0)

    def test_describe_mentions_threads(self):
        env = LocationEnv()
        program = make_program([Skip(), Skip()], env=env, name="demo")
        text = program.describe()
        assert "demo" in text and "thread 1" in text
