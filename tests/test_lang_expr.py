"""Unit tests for the expression language."""

import pytest

from repro.lang.expr import (
    BinOp,
    Const,
    R,
    RegE,
    dependency_idiom,
    eval_expr,
    expr_constants,
    expr_registers,
    iter_subexpressions,
    rename_registers,
    substitute,
    to_expr,
)


class TestConstruction:
    def test_to_expr_int(self):
        assert to_expr(5) == Const(5)

    def test_to_expr_passthrough(self):
        expr = R("r1")
        assert to_expr(expr) is expr

    def test_to_expr_bool_normalised(self):
        assert to_expr(True) == Const(1)

    def test_to_expr_rejects_strings(self):
        with pytest.raises(TypeError):
            to_expr("r1")

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            BinOp("%", Const(1), Const(2))

    def test_operator_overloads(self):
        expr = R("r1") + 1
        assert expr == BinOp("+", RegE("r1"), Const(1))
        assert (R("r1") - R("r2")).op == "-"
        assert (1 + R("r1")).left == Const(1)
        assert (R("a") * 2).op == "*"
        assert (R("a") & R("b")).op == "&"
        assert (R("a") | 1).op == "|"
        assert (R("a") ^ 1).op == "^"

    def test_comparison_builders(self):
        assert R("r1").eq(3).op == "=="
        assert R("r1").ne(3).op == "!="
        assert R("r1").lt(3).op == "<"
        assert R("r1").ge(3).op == ">="


class TestEvaluation:
    def test_constant(self):
        assert eval_expr(Const(7), {}) == 7

    def test_register_lookup(self):
        assert eval_expr(R("r1"), {"r1": 42}) == 42

    def test_missing_register_reads_zero(self):
        assert eval_expr(R("r9"), {}) == 0

    @pytest.mark.parametrize(
        "op,expected",
        [("+", 7), ("-", 3), ("*", 10), ("&", 0), ("|", 7), ("^", 7)],
    )
    def test_arithmetic(self, op, expected):
        assert eval_expr(BinOp(op, Const(5), Const(2)), {}) == expected

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [("==", 3, 3, 1), ("==", 3, 4, 0), ("!=", 3, 4, 1), ("<", 1, 2, 1),
         ("<=", 2, 2, 1), (">", 2, 1, 1), (">=", 1, 2, 0)],
    )
    def test_comparisons_return_bits(self, op, a, b, expected):
        assert eval_expr(BinOp(op, Const(a), Const(b)), {}) == expected

    def test_nested_expression(self):
        expr = (R("a") + R("b")) * 2
        assert eval_expr(expr, {"a": 3, "b": 4}) == 14

    def test_dependency_idiom_value_is_base(self):
        expr = dependency_idiom(100, "r1")
        assert eval_expr(expr, {"r1": 55}) == 100


class TestStructure:
    def test_expr_registers(self):
        expr = (R("a") + R("b")) + (R("a") - 1)
        assert expr_registers(expr) == {"a", "b"}

    def test_dependency_idiom_mentions_register(self):
        assert expr_registers(dependency_idiom(0, "r7")) == {"r7"}

    def test_expr_constants(self):
        assert expr_constants((R("a") + 3) * 5) == {3, 5}

    def test_substitute(self):
        expr = substitute(R("a") + R("b"), {"a": Const(1)})
        assert eval_expr(expr, {"b": 2}) == 3

    def test_rename_registers(self):
        expr = rename_registers(R("a") + R("b"), {"a": "x"})
        assert expr_registers(expr) == {"x", "b"}

    def test_iter_subexpressions(self):
        expr = R("a") + 1
        nodes = list(iter_subexpressions(expr))
        assert expr in nodes and Const(1) in nodes and RegE("a") in nodes
        assert len(nodes) == 3

    def test_expressions_are_hashable(self):
        assert len({R("a") + 1, R("a") + 1, R("a") + 2}) == 2
