"""Tests for the unified observability layer (``repro.obs``).

Covers the registry laws (counter monotonicity, inclusive histogram
bucket edges, label isolation, registration conflicts), the snapshot /
merge / diff algebra that carries worker metrics over the
multiprocessing boundary, structured JSON logging with contextvars
correlation, span tracing, and a live-service round trip of
``GET /metrics`` and the ``X-Request-Id`` echo.
"""

from __future__ import annotations

import io
import json
import queue
import re
import threading

import pytest

from repro.harness import Job, run_jobs
from repro.litmus import get_test
from repro.obs import (
    JsonFormatter,
    MetricsRegistry,
    PhaseAccumulator,
    bind,
    configure_logging,
    current_context,
    diff_snapshots,
    get_logger,
    get_registry,
    log_event,
    new_request_id,
    sanitize_request_id,
    span,
)
from repro.service import (
    PROMETHEUS_CONTENT_TYPE,
    SERVICE_SCHEMA_VERSION,
    ServiceClient,
    ServiceConfig,
    states_explored,
)
from repro.service.http import run_server


# -- registry laws -----------------------------------------------------------
class TestRegistryLaws:
    def test_counter_accumulates_and_is_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "test", labels=("layer",))
        counter.inc(layer="lru")
        counter.inc(2.5, layer="lru")
        assert counter.value(layer="lru") == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1.0, layer="lru")
        assert counter.value(layer="lru") == 3.5

    def test_label_isolation(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "test", labels=("layer", "outcome"))
        counter.inc(layer="lru", outcome="hit")
        counter.inc(layer="disk", outcome="hit")
        counter.inc(layer="lru", outcome="miss")
        assert counter.value(layer="lru", outcome="hit") == 1.0
        assert counter.value(layer="disk", outcome="hit") == 1.0
        assert counter.value(layer="disk", outcome="miss") == 0.0
        assert len(counter.series()) == 4  # the read above created the empty series

    def test_wrong_labels_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "test", labels=("layer",))
        with pytest.raises(ValueError):
            counter.inc(tier="lru")
        with pytest.raises(ValueError):
            counter.inc()  # missing the label entirely

    def test_duplicate_registration_is_get_or_create(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", "test", labels=("layer",))
        b = registry.counter("hits_total", "test", labels=("layer",))
        assert a is b
        with pytest.raises(ValueError):
            registry.gauge("hits_total", "test", labels=("layer",))  # kind mismatch
        with pytest.raises(ValueError):
            registry.counter("hits_total", "test", labels=("tier",))  # label mismatch

    def test_histogram_bucket_edges_are_inclusive(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", "test", buckets=(0.1, 1.0))
        hist.observe(0.1)   # lands in the 0.1 bucket (inclusive upper bound)
        hist.observe(0.5)   # lands in the 1.0 bucket
        hist.observe(99.0)  # lands in the +Inf overflow slot
        child = hist.labels()
        assert child.counts == [1, 1, 1]
        assert child.count == 3
        assert child.sum == pytest.approx(99.6)

    def test_histogram_rejects_bad_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("lat", "test", buckets=(1.0, 0.1))
        with pytest.raises(ValueError):
            registry.histogram("lat2", "test", buckets=())

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("workers", "test")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 3.0


# -- snapshot / merge / diff -------------------------------------------------
class TestSnapshotMergeDiff:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("jobs_total", "c", labels=("status",)).inc(3, status="ok")
        registry.gauge("depth", "g").set(7)
        hist = registry.histogram("lat", "h", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        return registry

    def test_snapshot_is_plain_and_json_safe(self):
        snap = self._populated().snapshot()
        json.dumps(snap)  # picklable/serialisable: plain dicts and numbers
        assert snap["jobs_total"]["kind"] == "counter"
        assert snap["jobs_total"]["series"]["ok"] == 3.0
        assert snap["lat"]["series"][""]["counts"] == [1, 1, 0]

    def test_merge_adds_counters_and_histograms(self):
        parent = MetricsRegistry()
        snap = self._populated().snapshot()
        parent.merge(snap)
        parent.merge(snap)
        assert parent.get("jobs_total").value(status="ok") == 6.0
        child = parent.get("lat").labels()
        assert child.counts == [2, 2, 0]
        assert child.count == 4
        # gauges take the incoming value rather than adding
        assert parent.get("depth").value() == 7.0

    def test_diff_snapshots_isolates_one_jobs_worth(self):
        registry = self._populated()
        before = registry.snapshot()
        registry.get("jobs_total").inc(2, status="ok")
        registry.get("jobs_total").inc(1, status="error")
        registry.get("lat").observe(5.0)
        delta = diff_snapshots(before, registry.snapshot())
        assert delta["jobs_total"]["series"] == {"ok": 2.0, "error": 1.0}
        assert delta["lat"]["series"][""]["counts"] == [0, 0, 1]
        assert "depth" not in delta  # unchanged gauge drops out of the delta

    def test_diff_then_merge_round_trips(self):
        registry = self._populated()
        before = registry.snapshot()
        registry.get("jobs_total").inc(4, status="ok")
        delta = diff_snapshots(before, registry.snapshot())
        parent = MetricsRegistry()
        parent.merge(delta)
        assert parent.get("jobs_total").value(status="ok") == 4.0


# -- Prometheus rendering ----------------------------------------------------
#: One Prometheus text-format line: comment, blank, or sample.
_PROM_LINE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+"
    r"|)$"
)


def assert_prometheus_text(text: str) -> None:
    assert text.endswith("\n")
    for line in text.splitlines():
        assert _PROM_LINE.match(line), f"not Prometheus text: {line!r}"


class TestPrometheusRendering:
    def test_render_covers_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "Hits.", labels=("layer",)).inc(2, layer="lru")
        registry.gauge("workers", "Pool size.").set(4)
        hist = registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
        hist.observe(0.5)
        text = registry.render_prometheus()
        assert_prometheus_text(text)
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{layer="lru"} 2' in text
        assert "workers 4" in text
        # histogram buckets are cumulative and end at +Inf
        assert 'lat_seconds_bucket{le="0.1"} 0' in text
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_sum 0.5" in text
        assert "lat_seconds_count 1" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", "", labels=("what",)).inc(what='a"b\\c\nd')
        text = registry.render_prometheus()
        assert 'what="a\\"b\\\\c\\nd"' in text


# -- structured logging ------------------------------------------------------
class TestStructuredLogging:
    def _capture(self):
        stream = io.StringIO()
        configure_logging("json", "debug", stream=stream)
        return stream

    def teardown_method(self):
        configure_logging("text", "info")

    def test_json_lines_parse_and_carry_context(self):
        stream = self._capture()
        log = get_logger("test.obs")
        with bind(request_id="req-1", job="abc123"):
            log_event(log, "unit of work", states=17)
        record = json.loads(stream.getvalue().strip())
        assert record["event"] == "unit of work"
        assert record["logger"] == "repro.test.obs"
        assert record["request_id"] == "req-1"
        assert record["job"] == "abc123"
        assert record["states"] == 17
        assert record["level"] == "info"

    def test_bind_restores_previous_context(self):
        with bind(request_id="outer"):
            with bind(request_id="inner", extra="x"):
                assert current_context() == {"request_id": "inner", "extra": "x"}
            assert current_context() == {"request_id": "outer"}

    def test_reserved_field_names_do_not_crash(self):
        stream = self._capture()
        log_event(get_logger("test.obs"), "evt", name="colliding", msg="also")
        record = json.loads(stream.getvalue().strip())
        assert record["field_name"] == "colliding"
        assert record["field_msg"] == "also"

    def test_text_format_mentions_event_and_fields(self):
        stream = io.StringIO()
        configure_logging("text", "info", stream=stream)
        log_event(get_logger("test.obs"), "hello", k="v")
        line = stream.getvalue()
        assert "hello" in line and "k=v" in line

    def test_formatter_survives_unserialisable_values(self):
        stream = self._capture()
        log_event(get_logger("test.obs"), "evt", obj=object())
        json.loads(stream.getvalue().strip())  # default=str keeps it valid JSON

    def test_request_id_helpers(self):
        assert len(new_request_id()) == 12
        assert new_request_id() != new_request_id()
        assert sanitize_request_id("ok-id_1.2") == "ok-id_1.2"
        assert sanitize_request_id("a\r\nSet-Cookie: x") == "aSet-Cookiex"
        assert sanitize_request_id("x" * 200) == "x" * 64
        assert sanitize_request_id("") is None
        assert sanitize_request_id("\r\n") is None

    def test_configure_logging_is_idempotent(self):
        logger = configure_logging("json", "info")
        configure_logging("json", "info")
        assert len(logger.handlers) == 1
        assert isinstance(logger.handlers[0].formatter, JsonFormatter)
        with pytest.raises(ValueError):
            configure_logging("yaml")


# -- tracing -----------------------------------------------------------------
class TestTracing:
    def test_spans_nest_into_dotted_paths(self):
        registry = get_registry()
        hist = registry.get("span_seconds")
        with span("outer"):
            with span("inner") as handle:
                pass
        assert handle.path == "outer.inner"
        series = hist.series()
        assert ("outer",) in series
        assert ("outer.inner",) in series
        assert handle.seconds >= 0.0

    def test_span_accepts_name_field(self):
        with span("sweep", name="litmus-sweep") as handle:
            pass
        assert handle.fields == {"name": "litmus-sweep"}

    def test_phase_accumulator_flushes_once(self):
        registry = MetricsRegistry()
        counter = registry.counter("phase_seconds", "", labels=("model", "phase"))
        phases = PhaseAccumulator()
        phases.add("certify", 0.25)
        phases.add("certify", 0.25)
        phases.add("enumerate", 1.0)
        phases.flush(counter, model="promising")
        assert counter.value(model="promising", phase="certify") == 0.5
        assert counter.value(model="promising", phase="enumerate") == 1.0
        assert phases.totals == {}


# -- cross-process metric flow -----------------------------------------------
class TestCrossProcessMerge:
    def test_worker_metrics_merge_into_parent(self):
        jobs = [
            Job(test=get_test("MP"), model="promising"),
            Job(test=get_test("SB"), model="promising"),
        ]
        registry = get_registry()
        kernel_states = registry.counter(
            "kernel_states_total", labels=("strategy",)
        )
        before = kernel_states.value(strategy="dfs")
        results = run_jobs(jobs, workers=2)
        assert [r.status for r in results] == ["ok", "ok"]
        # the transport fields were consumed by the parent-side merge
        assert all(r.metrics_delta is None for r in results)
        assert all(r.queue_seconds is not None and r.queue_seconds >= 0.0 for r in results)
        # the kernel ran only in the workers, yet the parent counter grew
        assert kernel_states.value(strategy="dfs") > before
        assert registry.get("pool_jobs_total") is not None

    def test_serial_path_keeps_metrics_local(self):
        jobs = [Job(test=get_test("MP"), model="promising")]
        registry = get_registry()
        kernel_states = registry.counter(
            "kernel_states_total", labels=("strategy",)
        )
        before = kernel_states.value(strategy="dfs")
        results = run_jobs(jobs, workers=1)
        assert results[0].status == "ok"
        assert kernel_states.value(strategy="dfs") > before

    def test_transport_fields_stay_out_of_report_json(self):
        from repro.harness.jobs import result_to_json

        results = run_jobs([Job(test=get_test("MP"), model="promising")], workers=2)
        row = result_to_json(results[0])
        assert "metrics_delta" not in row
        assert "queue_seconds" not in row


# -- live service round trip -------------------------------------------------
@pytest.fixture(scope="module")
def live_service(tmp_path_factory):
    """A real server on an ephemeral port, driven through the client."""
    ready: "queue.Queue[tuple[str, int]]" = queue.Queue()
    config = ServiceConfig(
        workers=1,
        batch_max_delay=0.0,
        lru_capacity=64,
        cache_dir=str(tmp_path_factory.mktemp("obs-service-cache")),
    )
    thread = threading.Thread(
        target=run_server,
        args=(config, "127.0.0.1", 0),
        kwargs={"on_ready": lambda host, port: ready.put((host, port))},
        daemon=True,
    )
    thread.start()
    host, port = ready.get(timeout=30)
    client = ServiceClient(host, port, timeout=60.0)
    client.wait_until_ready(30)
    yield client
    client.shutdown()
    thread.join(timeout=30)


class TestServiceObservability:
    def test_metrics_endpoint_serves_prometheus_text(self, live_service):
        live_service.explore(test="MP", models="promising")
        status, headers, raw = live_service._raw_request("GET", "/metrics")
        assert status == 200
        assert headers["content-type"] == PROMETHEUS_CONTENT_TYPE
        text = raw.decode()
        assert_prometheus_text(text)
        # kernel, pool/service, and cache layers are all represented
        assert "# TYPE kernel_states_total counter" in text
        assert "# TYPE service_requests_total counter" in text
        assert 'cache_requests_total{layer="lru"' in text
        assert 'cache_requests_total{layer="disk"' in text

    def test_request_id_is_echoed(self, live_service):
        live_service.healthz()
        generated = live_service.last_request_id
        assert generated and len(generated) == 12
        live_service.explore(test="SB", models="promising", request_id="my-corr-id")
        assert live_service.last_request_id == "my-corr-id"

    def test_explore_reports_cost(self, live_service):
        response = live_service.explore(test="MP+dmb+addr", models="promising")
        assert response["ok"]
        cost = response["cost"]
        assert cost["states_explored"] > 0
        assert cost["queue_ms"] >= 0.0
        assert cost["compute_ms"] >= 0.0
        assert sum(cost["served_from"].values()) == len(response["results"])
        row = response["results"][0]
        assert row["cost"]["states"] == states_explored(row["stats"])
        # a warm repeat is served from the LRU and billed zero compute
        repeat = live_service.explore(test="MP+dmb+addr", models="promising")
        assert repeat["results"][0]["served_from"] == "lru"
        assert repeat["results"][0]["cost"]["compute_ms"] == 0.0

    def test_health_and_stats_carry_schema_and_build(self, live_service):
        health = live_service.healthz()
        stats = live_service.stats()
        for payload in (health, stats):
            assert payload["schema_version"] == SERVICE_SCHEMA_VERSION
            assert payload["build"]["version"]
            assert payload["build"]["python"]
        assert set(stats["errors"]) == {"jobs", "timeouts", "batches", "total"}

    def test_coalesced_layer_appears_after_concurrent_identical_requests(
        self, live_service
    ):
        # Two identical cold requests in flight at once: one computes, the
        # other coalesces onto it — visible as the third cache layer.
        payload = {"test": "LB+addrs", "models": ["promising"], "options": {}}
        results: list = []

        def fire():
            client = ServiceClient(live_service.host, live_service.port, timeout=60.0)
            results.append(client.explore(**payload))

        threads = [threading.Thread(target=fire) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        served = [r["results"][0]["served_from"] for r in results]
        assert all(s in ("computed", "coalesced", "lru", "disk") for s in served)
        text = live_service.metrics_text()
        if "coalesced" in "".join(served):
            assert 'cache_requests_total{layer="coalesced",outcome="hit"}' in text


class TestServiceErrorAccounting:
    def test_job_error_increments_counters(self):
        # A private server whose executor raises: the error must land in
        # /stats errors and in service_errors_total, not vanish.
        from repro.harness import STATUS_ERROR, JobResult
        from repro.service import ExplorationService
        from repro.service.core import _SERVICE_ERRORS
        import repro.service.core as core_module

        def exploding(job, timeout=None, capture_errors=True):
            return JobResult(
                name=job.test.name,
                model=job.model,
                arch=job.arch,
                status=STATUS_ERROR,
                outcomes=None,
                verdict=None,
                expected=None,
                elapsed_seconds=0.0,
                error="synthetic failure",
                fingerprint=job.fingerprint(),
            )

        async def scenario():
            service = ExplorationService(
                ServiceConfig(workers=1, batch_max_delay=0.0, lru_capacity=8)
            )
            await service.start()
            try:
                before = _SERVICE_ERRORS.value(kind="job_error")
                status, payload = await service.handle_explore(
                    {"test": "MP", "models": ["promising"]}
                )
                assert status == 200
                assert payload["results"][0]["status"] == STATUS_ERROR
                stats = service.stats_snapshot()
                assert stats["errors"]["jobs"] >= 1
                assert stats["errors"]["total"] >= 1
                assert _SERVICE_ERRORS.value(kind="job_error") > before
            finally:
                await service.stop()

        import asyncio

        original = core_module.execute_job
        core_module.execute_job = exploding
        try:
            asyncio.run(scenario())
        finally:
            core_module.execute_job = original
