"""Tests for outcomes, outcome sets, and litmus conditions."""

import pytest

from repro.litmus.conditions import (
    And,
    MemEq,
    Not,
    RegEq,
    TrueCond,
    cond_and,
    cond_or,
    parse_condition,
)
from repro.outcomes import Outcome, OutcomeSet


def sample_outcome():
    return Outcome.make([{"r1": 1, "r2": 0}, {"r1": 5}], {0: 7, 8: 0})


class TestOutcome:
    def test_reg_and_mem_lookup(self):
        outcome = sample_outcome()
        assert outcome.reg(0, "r1") == 1
        assert outcome.reg(1, "r1") == 5
        assert outcome.reg(1, "missing") == 0
        assert outcome.mem(0) == 7
        assert outcome.mem(999) == 0

    def test_equality_and_hash(self):
        assert sample_outcome() == sample_outcome()
        assert hash(sample_outcome()) == hash(sample_outcome())

    def test_project_registers(self):
        projected = sample_outcome().project({0: ["r1"], 1: []}, [0])
        assert projected.regs_of(0) == {"r1": 1}
        assert projected.regs_of(1) == {}
        assert projected.memory_dict() == {0: 7}

    def test_project_default_keeps_everything(self):
        assert sample_outcome().project() == sample_outcome()

    def test_describe_hides_internal_registers(self):
        outcome = Outcome.make([{"r1": 1, "_scratch": 9}], {})
        assert "_scratch" not in outcome.describe()

    def test_describe_uses_location_names(self):
        assert "x=7" in sample_outcome().describe({0: "x"})


class TestOutcomeSet:
    def test_set_semantics(self):
        outcomes = OutcomeSet([sample_outcome(), sample_outcome()])
        assert len(outcomes) == 1
        assert sample_outcome() in outcomes

    def test_any_and_all(self):
        outcomes = OutcomeSet([sample_outcome()])
        assert outcomes.any_satisfies(lambda o: o.reg(0, "r1") == 1)
        assert outcomes.all_satisfy(lambda o: o.mem(0) == 7)
        assert not outcomes.any_satisfies(lambda o: o.reg(0, "r1") == 2)

    def test_filter_and_project(self):
        outcomes = OutcomeSet([sample_outcome()])
        assert len(outcomes.filter(lambda o: o.mem(0) == 7)) == 1
        assert len(outcomes.project({0: ["r1"], 1: []}, [])) == 1

    def test_equality_with_plain_sets(self):
        outcomes = OutcomeSet([sample_outcome()])
        assert outcomes == {sample_outcome()}

    def test_describe_sorted(self):
        a = Outcome.make([{"r1": 2}], {})
        b = Outcome.make([{"r1": 1}], {})
        text = OutcomeSet([a, b]).describe()
        assert text.index("r1=1") < text.index("r1=2")


class TestConditions:
    def test_atoms(self):
        outcome = sample_outcome()
        assert RegEq(0, "r1", 1).holds(outcome)
        assert not RegEq(0, "r1", 2).holds(outcome)
        assert MemEq(0, 7).holds(outcome)

    def test_connectives(self):
        outcome = sample_outcome()
        assert (RegEq(0, "r1", 1) & MemEq(0, 7)).holds(outcome)
        assert (RegEq(0, "r1", 2) | MemEq(0, 7)).holds(outcome)
        assert (~RegEq(0, "r1", 2)).holds(outcome)
        assert TrueCond().holds(outcome)

    def test_nary_builders(self):
        assert isinstance(cond_and(), TrueCond)
        assert isinstance(cond_and(RegEq(0, "a", 1)), RegEq)
        assert isinstance(cond_and(RegEq(0, "a", 1), RegEq(0, "b", 1)), And)
        assert not cond_or().holds(sample_outcome())

    def test_observables(self):
        cond = cond_and(RegEq(1, "r1", 5), Not(MemEq(8, 1, "y")))
        assert cond.registers() == {(1, "r1")}
        assert cond.locations() == {8}

    def test_repr_round_trips_visually(self):
        cond = cond_and(RegEq(1, "r1", 42), MemEq(0, 2, "x"))
        assert "1:r1=42" in repr(cond) and "x=2" in repr(cond)


class TestConditionParser:
    def test_simple_conjunction(self):
        cond = parse_condition("1:r1=42 /\\ 0:r2=0")
        assert cond.holds(Outcome.make([{"r2": 0}, {"r1": 42}], {}))
        assert not cond.holds(Outcome.make([{"r2": 1}, {"r1": 42}], {}))

    def test_memory_atoms_need_location_table(self):
        cond = parse_condition("x=2", {"x": 16})
        assert cond.holds(Outcome.make([], {16: 2}))
        with pytest.raises(ValueError):
            parse_condition("y=2", {"x": 16})

    def test_precedence_and_parentheses(self):
        cond = parse_condition("(0:a=1 \\/ 0:b=1) /\\ ~(0:c=1)")
        assert cond.holds(Outcome.make([{"a": 1, "c": 0}], {}))
        assert not cond.holds(Outcome.make([{"a": 1, "c": 1}], {}))

    def test_alternative_operator_spellings(self):
        cond = parse_condition("0:a=1 && 0:b=2 || 0:c=3")
        assert cond.holds(Outcome.make([{"c": 3}], {}))

    def test_empty_condition_is_true(self):
        assert parse_condition("").holds(sample_outcome())

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_condition("0:a=1 /\\")
        with pytest.raises(ValueError):
            parse_condition("(0:a=1")
