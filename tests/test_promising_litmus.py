"""The promising model against the full litmus catalogue (both architectures).

This is the reproduction of the model-validation methodology of §7: every
catalogue test carries the architecturally expected verdict, and the
exhaustive explorer must reproduce it exactly.
"""

import pytest

from repro.lang.kinds import Arch
from repro.litmus import all_tests, run_promising

CATALOGUE = all_tests()
IDS = [test.name for test in CATALOGUE]


@pytest.mark.parametrize("test", CATALOGUE, ids=IDS)
def test_arm_verdict_matches_architecture(test):
    result = run_promising(test, Arch.ARM)
    expected = test.expected_verdict(Arch.ARM)
    assert result.verdict is expected, (
        f"{test.name}: promising/ARM says {result.verdict}, expected {expected}\n"
        f"outcomes:\n{result.outcomes.describe(test.program.loc_names)}"
    )


@pytest.mark.parametrize("test", CATALOGUE, ids=IDS)
def test_riscv_verdict_matches_architecture(test):
    result = run_promising(test, Arch.RISCV)
    expected = test.expected_verdict(Arch.RISCV)
    assert result.verdict is expected, (
        f"{test.name}: promising/RISC-V says {result.verdict}, expected {expected}"
    )


@pytest.mark.parametrize("test", CATALOGUE, ids=IDS)
def test_outcomes_do_not_depend_on_local_location_optimisation(test):
    """The §7 shared-location optimisation must not change projected outcomes."""
    from repro.promising import ExploreConfig

    with_opt = run_promising(test, Arch.ARM, ExploreConfig(localise=True))
    without_opt = run_promising(test, Arch.ARM, ExploreConfig(localise=False))
    assert set(with_opt.outcomes) == set(without_opt.outcomes), test.name


def test_catalogue_has_reasonable_coverage():
    names = {t.name for t in CATALOGUE}
    # The families the paper's examples revolve around must all be present.
    for required in ("MP", "MP+dmbs", "MP+dmb+addr", "SB", "LB", "PPOCA",
                     "LSE-atomicity", "WRC+addrs", "IRIW+addrs", "CoRR"):
        assert required in names
    assert len(CATALOGUE) >= 40


def test_every_test_declares_verdicts_for_both_architectures():
    for test in CATALOGUE:
        assert test.expected_verdict(Arch.ARM) is not None
        assert test.expected_verdict(Arch.RISCV) is not None
