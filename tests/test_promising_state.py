"""Unit tests for the promising model's state: memory, views, thread state."""

import pytest

from repro.lang.expr import Const, R
from repro.promising.state import (
    ExclBank,
    Forward,
    FWD_INIT,
    Memory,
    Msg,
    TState,
    initial_tstate,
    vmax,
)


class TestViews:
    def test_vmax_is_join(self):
        assert vmax(1, 5, 3) == 5
        assert vmax() == 0


class TestMemory:
    def test_initially_empty(self):
        memory = Memory()
        assert memory.last_timestamp == 0
        assert len(memory) == 0

    def test_append_returns_fresh_timestamps(self):
        memory = Memory()
        memory1, t1 = memory.append(Msg(0, 1, 0))
        memory2, t2 = memory1.append(Msg(8, 2, 1))
        assert (t1, t2) == (1, 2)
        assert memory.last_timestamp == 0  # immutability
        assert memory2.msg(1) == Msg(0, 1, 0)

    def test_read_timestamp_zero_gives_initial(self):
        memory = Memory(initial={0: 7})
        assert memory.read(0, 0) == 7
        assert memory.read(8, 0) == 0

    def test_read_wrong_location_gives_none(self):
        memory, _ = Memory().append(Msg(0, 1, 0))
        assert memory.read(8, 1) is None
        assert memory.read(0, 1) == 1

    def test_msg_out_of_range(self):
        with pytest.raises(IndexError):
            Memory().msg(1)

    def test_writes_to_includes_initial(self):
        memory, _ = Memory().append(Msg(0, 1, 0))
        memory, _ = memory.append(Msg(8, 2, 0))
        memory, _ = memory.append(Msg(0, 3, 1))
        assert memory.writes_to(0) == [0, 1, 3]

    def test_no_write_to_in(self):
        memory, _ = Memory().append(Msg(0, 1, 0))
        memory, _ = memory.append(Msg(8, 2, 0))
        assert memory.no_write_to_in(0, 1, 2)
        assert not memory.no_write_to_in(0, 0, 2)

    def test_final_values_last_write_wins(self):
        memory, _ = Memory(initial={16: 9}).append(Msg(0, 1, 0))
        memory, _ = memory.append(Msg(0, 2, 1))
        assert memory.final_values() == {16: 9, 0: 2}

    def test_equality_and_hash(self):
        m1, _ = Memory().append(Msg(0, 1, 0))
        m2, _ = Memory().append(Msg(0, 1, 0))
        assert m1 == m2 and hash(m1) == hash(m2)
        assert m1 != Memory()


class TestTState:
    def test_initial_state_is_zeroed(self):
        ts = initial_tstate()
        assert ts.reg("r1") == (0, 0)
        assert ts.coh_view(0) == 0
        assert ts.forward(0) == FWD_INIT
        assert not ts.has_promises
        assert ts.xclb is None

    def test_eval_constant_has_zero_view(self):
        assert initial_tstate().eval(Const(5)) == (5, 0)

    def test_eval_register_carries_view(self):
        ts = initial_tstate()
        ts.regs["r1"] = (42, 3)
        assert ts.eval(R("r1")) == (42, 3)

    def test_eval_merges_views(self):
        ts = initial_tstate()
        ts.regs["a"] = (1, 2)
        ts.regs["b"] = (4, 5)
        value, view = ts.eval(R("a") + R("b"))
        assert value == 5 and view == 5

    def test_dependency_idiom_keeps_view(self):
        ts = initial_tstate()
        ts.regs["r1"] = (42, 7)
        _value, view = ts.eval(Const(100) + (R("r1") - R("r1")))
        assert view == 7

    def test_copy_is_independent(self):
        ts = initial_tstate()
        copy = ts.copy()
        copy.regs["r1"] = (1, 1)
        copy.vrOld = 4
        assert ts.reg("r1") == (0, 0) and ts.vrOld == 0

    def test_key_equality(self):
        a, b = initial_tstate(), initial_tstate()
        assert a == b and hash(a) == hash(b)
        b.vCAP = 1
        assert a != b

    def test_register_values_strip_views(self):
        ts = initial_tstate()
        ts.regs["r1"] = (42, 3)
        assert ts.register_values() == {"r1": 42}

    def test_describe_mentions_views(self):
        ts = initial_tstate()
        ts.xclb = ExclBank(2, 2)
        text = ts.describe()
        assert "vrOld" in text and "xclb" in text

    def test_forward_bank_entries(self):
        ts = initial_tstate()
        ts.fwdb[0] = Forward(3, 1, True)
        assert ts.forward(0).xcl is True


class TestSlotDriftGuards:
    """Hand-rolled copies must keep up with ``__slots__``.

    ``TState.copy``, ``TState.unpack`` and ``Memory.append`` build
    instances via ``__new__`` and assign every attribute explicitly for
    speed.  Adding a slot without extending them would silently ship
    states with missing attributes; these tests statically diff the
    assigned-attribute sets against ``__slots__`` so the drift fails CI
    instead.
    """

    @staticmethod
    def _assigned_attrs(func, target):
        import ast
        import inspect
        import textwrap

        tree = ast.parse(textwrap.dedent(inspect.getsource(func)))
        return {
            node.attr
            for node in ast.walk(tree)
            if isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Store)
            and isinstance(node.value, ast.Name)
            and node.value.id == target
        }

    def test_tstate_copy_assigns_every_slot(self):
        assert self._assigned_attrs(TState.copy, "new") == set(TState.__slots__)

    def test_tstate_unpack_assigns_every_slot(self):
        assert self._assigned_attrs(TState.unpack, "new") == set(TState.__slots__)

    def test_memory_append_assigns_every_slot(self):
        assert self._assigned_attrs(Memory.append, "new") == set(Memory.__slots__)

    def test_pack_covers_every_semantic_slot(self):
        # ``pack`` reads every slot except the memoised ``_ckey``; guard
        # by round-tripping a fully populated state.
        ts = initial_tstate()
        ts.prom = frozenset({3})
        ts.regs["r1"] = (1, 2)
        ts.coh[0] = 4
        ts.vrOld, ts.vwOld, ts.vrNew = 1, 2, 3
        ts.vwNew, ts.vCAP, ts.vRel = 4, 5, 6
        ts.fwdb[8] = Forward(3, 1, True)
        ts.xclb = ExclBank(2, 2)
        registers = ("r1",)
        assert TState.unpack(ts.pack(registers), registers) == ts
