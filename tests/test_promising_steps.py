"""Unit tests for the thread-local step rules of Fig. 5 / §A.3."""


from repro.lang import (
    DMB_LD,
    DMB_ST,
    DMB_SY,
    Isb,
    R,
    ReadKind,
    Skip,
    WriteKind,
    assign,
    if_,
    load,
    seq,
    store,
    while_,
)
from repro.lang.kinds import Arch, VFAIL, VSUCC
from repro.promising.state import Memory, Msg, initial_tstate
from repro.promising.steps import (
    is_terminated,
    normal_write_steps,
    normalise,
    promise_step,
    sequential_steps,
    thread_local_steps,
)

X, Y, Z = 0, 8, 16


def memory_with(*msgs):
    memory = Memory()
    for msg in msgs:
        memory, _ = memory.append(msg)
    return memory


class TestNormalisation:
    def test_skip_seq_collapses(self):
        assert normalise(seq(Skip(), assign("a", 1))) == assign("a", 1)

    def test_while_unfolds_to_if(self):
        stmt = normalise(while_(R("r").eq(0), assign("a", 1)))
        assert stmt.__class__.__name__ == "If"

    def test_is_terminated(self):
        assert is_terminated(Skip())
        assert is_terminated(seq(Skip(), Skip()))
        assert not is_terminated(assign("a", 1))


class TestReadRule:
    def test_read_can_take_any_same_location_write(self):
        memory = memory_with(Msg(X, 1, 0), Msg(X, 2, 0), Msg(Y, 9, 0))
        steps = thread_local_steps(load("r1", X), initial_tstate(), memory, Arch.ARM, 1)
        assert sorted(s.value for s in steps) == [0, 1, 2]

    def test_read_records_post_view_in_register(self):
        memory = memory_with(Msg(X, 1, 0))
        (step,) = [s for s in thread_local_steps(load("r1", X), initial_tstate(), memory, Arch.ARM, 1) if s.timestamp == 1]
        assert step.tstate.reg("r1") == (1, 1)
        assert step.tstate.vrOld == 1
        assert step.tstate.coh_view(X) == 1

    def test_coherence_forbids_old_reads(self):
        memory = memory_with(Msg(X, 1, 0), Msg(X, 2, 0))
        ts = initial_tstate()
        ts.coh[X] = 2
        steps = thread_local_steps(load("r1", X), ts, memory, Arch.ARM, 1)
        assert [s.value for s in steps] == [2]

    def test_vrnew_constrains_reads(self):
        memory = memory_with(Msg(X, 1, 0), Msg(Y, 2, 0))
        ts = initial_tstate()
        ts.vrNew = 1  # has "seen" the write to X at timestamp 1
        steps = thread_local_steps(load("r1", X), ts, memory, Arch.ARM, 1)
        assert [s.value for s in steps] == [1]

    def test_address_dependency_constrains_via_register_view(self):
        memory = memory_with(Msg(X, 37, 0), Msg(Y, 42, 0))
        ts = initial_tstate()
        ts.regs["r1"] = (42, 2)
        dependent = load("r2", R("r1") - R("r1"))  # address == X with a dependency
        steps = thread_local_steps(dependent, ts, memory, Arch.ARM, 1)
        assert [s.value for s in steps] == [37]

    def test_acquire_read_bumps_vrnew_vwnew(self):
        memory = memory_with(Msg(X, 1, 0))
        (step,) = [s for s in thread_local_steps(load("r1", X, kind=ReadKind.ACQ), initial_tstate(), memory, Arch.ARM, 1) if s.timestamp == 1]
        assert step.tstate.vrNew == 1 and step.tstate.vwNew == 1

    def test_plain_read_leaves_vrnew(self):
        memory = memory_with(Msg(X, 1, 0))
        (step,) = [s for s in thread_local_steps(load("r1", X), initial_tstate(), memory, Arch.ARM, 1) if s.timestamp == 1]
        assert step.tstate.vrNew == 0

    def test_strong_acquire_ordered_after_vrel(self):
        memory = memory_with(Msg(X, 1, 0), Msg(Y, 2, 0))
        ts = initial_tstate()
        ts.vRel = 1
        plain = thread_local_steps(load("r1", X), ts, memory, Arch.ARM, 1)
        acquire = thread_local_steps(load("r1", X, kind=ReadKind.ACQ), ts, memory, Arch.ARM, 1)
        assert sorted(s.value for s in plain) == [0, 1]
        assert [s.value for s in acquire] == [1]

    def test_exclusive_read_sets_xclb(self):
        memory = memory_with(Msg(X, 1, 0))
        (step,) = [s for s in thread_local_steps(load("r1", X, exclusive=True), initial_tstate(), memory, Arch.ARM, 1) if s.timestamp == 1]
        assert step.tstate.xclb == (1, 1)


class TestForwarding:
    def test_forwarded_read_gets_small_view(self):
        ts = initial_tstate()
        memory = Memory()
        # the thread writes X (timestamp 1) and forwards it to its own read
        (write,) = normal_write_steps(store(X, 5), ts, memory, Arch.ARM, 0)
        (read,) = [
            s
            for s in thread_local_steps(load("r1", X), write.tstate, write.memory, Arch.ARM, 0)
            if s.timestamp == 1
        ]
        assert read.tstate.reg("r1") == (5, 0)  # forward view, not timestamp 1

    def test_other_thread_read_gets_timestamp_view(self):
        ts = initial_tstate()
        memory = Memory()
        (write,) = normal_write_steps(store(X, 5), ts, memory, Arch.ARM, 0)
        (read,) = [
            s
            for s in thread_local_steps(load("r1", X), initial_tstate(), write.memory, Arch.ARM, 1)
            if s.timestamp == 1
        ]
        assert read.tstate.reg("r1") == (5, 1)

    def test_no_forwarding_from_exclusive_write_for_acquire(self):
        ts = initial_tstate()
        ts.xclb = None
        memory = Memory()
        # exclusive write needs a prior load exclusive
        (lx,) = [s for s in thread_local_steps(load("r0", X, exclusive=True), ts, memory, Arch.ARM, 0) if s.timestamp == 0]
        writes = normal_write_steps(
            store(X, 5, exclusive=True, succ_reg="rs"), lx.tstate, memory, Arch.ARM, 0
        )
        write = next(s for s in writes if s.kind == "write")
        (acq_read,) = [
            s
            for s in thread_local_steps(load("r1", X, kind=ReadKind.ACQ), write.tstate, write.memory, Arch.ARM, 0)
            if s.timestamp == 1
        ]
        assert acq_read.tstate.reg("r1")[1] == 1  # no forwarding: full timestamp view


class TestFences:
    def test_dmb_sy_merges_both_old_views(self):
        ts = initial_tstate()
        ts.vrOld, ts.vwOld = 3, 5
        (step,) = thread_local_steps(DMB_SY, ts, Memory(), Arch.ARM, 0)
        assert step.tstate.vrNew == 5 and step.tstate.vwNew == 5

    def test_dmb_ld_merges_only_read_old(self):
        ts = initial_tstate()
        ts.vrOld, ts.vwOld = 3, 5
        (step,) = thread_local_steps(DMB_LD, ts, Memory(), Arch.ARM, 0)
        assert step.tstate.vrNew == 3 and step.tstate.vwNew == 3

    def test_dmb_st_orders_only_writes(self):
        ts = initial_tstate()
        ts.vrOld, ts.vwOld = 3, 5
        (step,) = thread_local_steps(DMB_ST, ts, Memory(), Arch.ARM, 0)
        assert step.tstate.vrNew == 0 and step.tstate.vwNew == 5

    def test_isb_merges_vcap_into_vrnew(self):
        ts = initial_tstate()
        ts.vCAP = 4
        (step,) = thread_local_steps(Isb(), ts, Memory(), Arch.ARM, 0)
        assert step.tstate.vrNew == 4


class TestBranchesAndAssign:
    def test_branch_updates_vcap_and_picks_branch(self):
        ts = initial_tstate()
        ts.regs["r1"] = (1, 6)
        stmt = if_(R("r1").eq(1), assign("a", 1), assign("a", 2))
        (step,) = thread_local_steps(stmt, ts, Memory(), Arch.ARM, 0)
        assert step.tstate.vCAP == 6
        assert step.stmt == assign("a", 1)

    def test_branch_not_taken(self):
        ts = initial_tstate()
        stmt = if_(R("r1").eq(1), assign("a", 1), assign("a", 2))
        (step,) = thread_local_steps(stmt, ts, Memory(), Arch.ARM, 0)
        assert step.stmt == assign("a", 2)

    def test_assign_carries_view(self):
        ts = initial_tstate()
        ts.regs["r1"] = (10, 3)
        (step,) = thread_local_steps(assign("r2", R("r1") + 1), ts, Memory(), Arch.ARM, 0)
        assert step.tstate.reg("r2") == (11, 3)


class TestWritesAndPromises:
    def test_normal_write_appends_message(self):
        (step,) = normal_write_steps(store(X, 5), initial_tstate(), Memory(), Arch.ARM, 3)
        assert step.memory.msg(1) == Msg(X, 5, 3)
        assert step.tstate.prom == frozenset()
        assert step.tstate.vwOld == 1
        assert step.tstate.coh_view(X) == 1

    def test_release_write_updates_vrel(self):
        (step,) = normal_write_steps(
            store(X, 5, kind=WriteKind.REL), initial_tstate(), Memory(), Arch.ARM, 0
        )
        assert step.tstate.vRel == 1

    def test_promise_step_records_obligation(self):
        step = promise_step(store(X, 5), initial_tstate(), Memory(), Msg(X, 5, 0))
        assert step.tstate.prom == {1}
        assert step.memory.last_timestamp == 1

    def test_fulfil_requires_matching_message(self):
        promised = promise_step(store(X, 5), initial_tstate(), Memory(), Msg(X, 6, 0))
        steps = thread_local_steps(store(X, 5), promised.tstate, promised.memory, Arch.ARM, 0)
        assert steps == []  # value mismatch: cannot fulfil

    def test_fulfil_requires_preview_below_timestamp(self):
        promised = promise_step(store(X, 5), initial_tstate(), Memory(), Msg(X, 5, 0))
        ts = promised.tstate.copy()
        ts.vwNew = 1  # as strong as the promised timestamp → cannot fulfil
        assert thread_local_steps(store(X, 5), ts, promised.memory, Arch.ARM, 0) == []
        ts.vwNew = 0
        assert len(thread_local_steps(store(X, 5), ts, promised.memory, Arch.ARM, 0)) == 1

    def test_sequential_steps_include_writes(self):
        kinds = {s.kind for s in sequential_steps(store(X, 1), initial_tstate(), Memory(), Arch.ARM, 0)}
        assert "write" in kinds


class TestExclusives:
    def _after_load_exclusive(self, arch, timestamp=0, memory=None):
        memory = memory or Memory()
        steps = thread_local_steps(load("r0", X, exclusive=True), initial_tstate(), memory, arch, 0)
        return next(s for s in steps if s.timestamp == timestamp)

    def test_store_exclusive_can_always_fail(self):
        steps = thread_local_steps(
            store(X, 1, exclusive=True, succ_reg="rs"), initial_tstate(), Memory(), Arch.ARM, 0
        )
        fails = [s for s in steps if s.kind == "xcl-fail"]
        assert len(fails) == 1
        assert fails[0].tstate.reg("rs") == (VFAIL, 0)
        assert fails[0].tstate.xclb is None

    def test_store_exclusive_needs_xclb_to_succeed(self):
        steps = normal_write_steps(
            store(X, 1, exclusive=True, succ_reg="rs"), initial_tstate(), Memory(), Arch.ARM, 0
        )
        assert steps == []

    def test_successful_store_exclusive_success_register_views(self):
        for arch, expected_view in ((Arch.ARM, 0), (Arch.RISCV, 1)):
            lx = self._after_load_exclusive(arch)
            writes = normal_write_steps(
                store(X, 1, exclusive=True, succ_reg="rs"), lx.tstate, Memory(), arch, 0
            )
            write = next(s for s in writes)
            assert write.tstate.reg("rs") == (VSUCC, expected_view)
            assert write.tstate.xclb is None

    def test_atomicity_blocks_intervening_foreign_write(self):
        # Load exclusive reads the initial write; another thread then writes X.
        lx = self._after_load_exclusive(Arch.ARM)
        memory, _ = Memory().append(Msg(X, 9, 7))  # foreign write at timestamp 1
        writes = normal_write_steps(
            store(X, 1, exclusive=True, succ_reg="rs"), lx.tstate, memory, Arch.ARM, 0
        )
        assert writes == []  # cannot succeed atomically

    def test_atomicity_allows_own_intervening_write(self):
        lx = self._after_load_exclusive(Arch.ARM)
        memory, _ = Memory().append(Msg(X, 9, 0))  # same thread's write
        writes = normal_write_steps(
            store(X, 1, exclusive=True, succ_reg="rs"), lx.tstate, memory, Arch.ARM, 0
        )
        assert len(writes) == 1
