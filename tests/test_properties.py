"""Property-based tests (hypothesis) on the core data structures and models.

The headline property is the experimental counterpart of Theorem 6.1: on
randomly generated small programs, the promising explorer and the
axiomatic enumerator produce identical projected outcome sets.  Further
properties pin down invariants of memory, views, statement normalisation
and the condition parser.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.axiomatic import enumerate_axiomatic_outcomes, AxiomaticConfig
from repro.lang import (
    DMB_LD,
    DMB_ST,
    DMB_SY,
    R,
    ReadKind,
    WriteKind,
    load,
    make_program,
    seq,
    store,
    statement_registers,
)
from repro.lang.kinds import Arch
from repro.litmus.conditions import parse_condition
from repro.outcomes import Outcome
from repro.promising import ExploreConfig, explore
from repro.promising.state import Memory, Msg, initial_tstate, vmax
from repro.promising.steps import normalise, sequential_steps, thread_local_steps

LOCATIONS = [0, 8]
VALUES = [1, 2]

# --------------------------------------------------------------------------
# Program generator: 2 threads, 2-3 instructions each, over two locations.
# --------------------------------------------------------------------------


@st.composite
def instructions(draw, reg_pool):
    kind = draw(st.sampled_from(["load", "store", "store_dep", "fence"]))
    loc = draw(st.sampled_from(LOCATIONS))
    if kind == "load":
        reg = f"r{len(reg_pool)}"
        reg_pool.append(reg)
        rk = draw(st.sampled_from([ReadKind.PLN, ReadKind.ACQ]))
        return load(reg, loc, kind=rk)
    if kind == "store":
        wk = draw(st.sampled_from([WriteKind.PLN, WriteKind.REL]))
        return store(loc, draw(st.sampled_from(VALUES)), kind=wk)
    if kind == "store_dep" and reg_pool:
        source = draw(st.sampled_from(reg_pool))
        return store(loc, R(source))
    return draw(st.sampled_from([DMB_SY, DMB_LD, DMB_ST]))


@st.composite
def small_threads(draw):
    reg_pool: list[str] = []
    length = draw(st.integers(min_value=2, max_value=3))
    return seq(*[draw(instructions(reg_pool)) for _ in range(length)])


@st.composite
def small_programs(draw):
    return make_program([draw(small_threads()), draw(small_threads())])


def _projected(program, outcomes):
    regs = {tid: sorted(statement_registers(program.threads[tid]))
            for tid in program.thread_ids}
    return set(outcomes.project(regs, LOCATIONS))


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(program=small_programs(), arch=st.sampled_from([Arch.ARM, Arch.RISCV]))
def test_promising_agrees_with_axiomatic_on_random_programs(program, arch):
    # Keep the projected locations shared so the local-location optimisation
    # cannot hide them from the final memory (the litmus runner does the same
    # for locations observed by a test's condition).
    promising = explore(program, ExploreConfig(arch=arch, shared_locations=tuple(LOCATIONS)))
    axiomatic = enumerate_axiomatic_outcomes(program, AxiomaticConfig(arch=arch))
    assert _projected(program, promising.outcomes) == _projected(program, axiomatic.outcomes)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program=small_programs())
def test_localisation_never_changes_projected_outcomes(program):
    with_opt = explore(program, ExploreConfig(localise=True, shared_locations=tuple(LOCATIONS)))
    without = explore(program, ExploreConfig(localise=False))
    assert _projected(program, with_opt.outcomes) == _projected(program, without.outcomes)


# --------------------------------------------------------------------------
# State-level invariants
# --------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(LOCATIONS), st.integers(0, 5)), max_size=6))
def test_memory_final_values_match_last_write(writes):
    memory = Memory()
    for loc, val in writes:
        memory, _ = memory.append(Msg(loc, val, 0))
    final = memory.final_values()
    for loc in LOCATIONS:
        relevant = [val for wloc, val in writes if wloc == loc]
        assert final.get(loc, 0) == (relevant[-1] if relevant else 0)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 30), max_size=6))
def test_vmax_is_commutative_monotone(views):
    assert vmax(*views) == vmax(*reversed(views))
    assert vmax(*views) >= (max(views) if views else 0)


@settings(max_examples=30, deadline=None)
@given(thread=small_threads())
def test_normalise_is_idempotent(thread):
    assert normalise(normalise(thread)) == normalise(thread)


@settings(max_examples=30, deadline=None)
@given(thread=small_threads(), arch=st.sampled_from([Arch.ARM, Arch.RISCV]))
def test_views_grow_monotonically_along_steps(thread, arch):
    """Old views never decrease, and memory only ever grows."""
    memory = Memory()
    ts = initial_tstate()
    stmt = normalise(thread)
    for _ in range(6):
        steps = sequential_steps(stmt, ts, memory, arch, 0)
        if not steps:
            break
        step = steps[0]
        assert step.tstate.vrOld >= ts.vrOld
        assert step.tstate.vwOld >= ts.vwOld
        assert step.memory.last_timestamp >= memory.last_timestamp
        assert step.memory.messages[: memory.last_timestamp] == memory.messages
        stmt, ts, memory = step.stmt, step.tstate, step.memory


@settings(max_examples=30, deadline=None)
@given(thread=small_threads())
def test_thread_local_steps_never_change_memory(thread):
    memory, _ = Memory().append(Msg(0, 1, 1))
    for step in thread_local_steps(normalise(thread), initial_tstate(), memory, Arch.ARM, 0):
        assert step.memory is memory


# --------------------------------------------------------------------------
# Conditions
# --------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    tid=st.integers(0, 3),
    reg=st.sampled_from(["r0", "r1", "X2"]),
    value=st.integers(-3, 9),
)
def test_condition_parser_round_trip(tid, reg, value):
    condition = parse_condition(f"{tid}:{reg}={value}")
    good = Outcome.make([{} for _ in range(tid)] + [{reg: value}], {})
    bad = Outcome.make([{} for _ in range(tid)] + [{reg: value + 1}], {})
    assert condition.holds(good)
    assert not condition.holds(bad)
