"""Tests for the long-lived exploration service.

Covers request normalization, the resident :class:`WorkerPool`, the
caching/coalescing engine (the coalesced-counter assertion is an
acceptance criterion of the service PR), and a live HTTP round-trip
through the blocking client — the same path the CI smoke job drives.
"""

import asyncio
import queue
import threading

import pytest

from repro.harness.jobs import Job, execute_job
from repro.harness.scheduler import WorkerPool
from repro.lang.kinds import Arch
from repro.litmus import get_test
from repro.service import (
    ExplorationService,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    ServiceError,
    percentile,
)
from repro.service.http import run_server

MP_SOURCE = (
    "AArch64 MP-service\n"
    "{ 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x; }\n"
    " P0          | P1          ;\n"
    " MOV W0,#1   | LDR W0,[X1] ;\n"
    " STR W0,[X1] | LDR W2,[X3] ;\n"
    " STR W0,[X3] |             ;\n"
    "exists (1:X0=1 /\\ 1:X2=0)\n"
)


def make_service(**overrides) -> ExplorationService:
    defaults = dict(workers=1, batch_max_delay=0.0)
    defaults.update(overrides)
    return ExplorationService(ServiceConfig(**defaults))


def run_async(coroutine):
    return asyncio.run(coroutine)


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 0.5) is None

    def test_nearest_rank(self):
        values = [0.1, 0.2, 0.3, 0.4]
        assert percentile(values, 0.5) == 0.2
        assert percentile(values, 0.95) == 0.4
        assert percentile([7.0], 0.95) == 7.0


class TestNormalize:
    def normalize(self, payload, **overrides):
        return make_service(**overrides).normalize(payload)

    def test_requires_exactly_one_of_source_and_test(self):
        with pytest.raises(ServiceError):
            self.normalize({})
        with pytest.raises(ServiceError):
            self.normalize({"test": "MP", "source": MP_SOURCE})

    def test_catalogue_test(self):
        request = self.normalize({"test": "MP", "models": ["promising", "axiomatic"]})
        assert request.name == "MP" and request.arch is Arch.ARM
        assert [job.model for job in request.jobs] == ["promising", "axiomatic"]
        assert len({job.fingerprint() for job in request.jobs}) == 2

    def test_source_arch_comes_from_header(self):
        request = self.normalize({"source": MP_SOURCE})
        assert request.arch is Arch.ARM and request.name == "MP-service"

    def test_explicit_arch_and_comma_models(self):
        request = self.normalize({"test": "SB", "arch": "riscv", "models": "promising,flat"})
        assert request.arch is Arch.RISCV
        assert request.models == ("promising", "flat")

    def test_models_deduped(self):
        request = self.normalize({"test": "SB", "models": ["promising", "promising"]})
        assert request.models == ("promising",)

    def test_unknown_model_arch_and_test(self):
        with pytest.raises(ServiceError):
            self.normalize({"test": "SB", "models": ["quantum"]})
        with pytest.raises(ServiceError):
            self.normalize({"test": "SB", "arch": "ia64"})
        with pytest.raises(ServiceError):
            self.normalize({"test": "definitely-not-a-test"})

    def test_unparseable_source_is_client_error(self):
        with pytest.raises(ServiceError):
            self.normalize({"source": "this is not litmus"})

    def test_option_bounds(self):
        with pytest.raises(ServiceError):
            self.normalize({"test": "SB", "options": {"loop_bound": 0}})
        with pytest.raises(ServiceError):
            self.normalize({"test": "SB", "options": {"loop_bound": 99}})
        with pytest.raises(ServiceError):
            self.normalize({"test": "SB", "options": {"timeout": -1}})
        with pytest.raises(ServiceError):
            self.normalize({"test": "SB", "options": {"max_states": 0}})
        # Over-limit timeouts are rejected like every other option, not
        # silently clamped.
        with pytest.raises(ServiceError):
            self.normalize({"test": "SB", "options": {"timeout": 10_000}})
        request = self.normalize({"test": "SB", "options": {"timeout": 5}})
        assert request.timeout == 5.0

    def test_oversized_source_is_413(self):
        with pytest.raises(ServiceError) as excinfo:
            self.normalize({"source": MP_SOURCE}, max_source_bytes=8)
        assert excinfo.value.status == 413

    def test_options_shape_job_fingerprints(self):
        loose = self.normalize({"test": "SB"})
        tight = self.normalize({"test": "SB", "options": {"max_states": 17}})
        assert loose.jobs[0].fingerprint() != tight.jobs[0].fingerprint()


class TestWorkerPool:
    def test_results_match_serial_execution(self):
        jobs = [Job(test=get_test(name), model="axiomatic") for name in ("SB", "MP")]
        with WorkerPool(2) as pool:
            pooled = pool.run(jobs)
        serial = [execute_job(job) for job in jobs]
        for a, b in zip(pooled, serial):
            assert a.name == b.name
            assert set(a.outcomes) == set(b.outcomes)

    def test_pool_stays_warm_across_batches(self):
        job = Job(test=get_test("SB"), model="axiomatic")
        with WorkerPool(1) as pool:
            pool.run([job])
            pool.run([job])
            assert pool.batches == 2 and pool.jobs_executed == 2

    def test_on_result_streams_every_index(self):
        jobs = [Job(test=get_test(name), model="axiomatic") for name in ("SB", "MP", "LB")]
        seen = {}
        with WorkerPool(2) as pool:
            pool.run(jobs, on_result=lambda index, result: seen.__setitem__(index, result))
        assert sorted(seen) == [0, 1, 2]

    def test_timeout_sequence_must_match(self):
        job = Job(test=get_test("SB"), model="axiomatic")
        with WorkerPool(1) as pool:
            with pytest.raises(ValueError):
                pool.run([job, job], timeout=[1.0])

    def test_closed_pool_rejects_work(self):
        pool = WorkerPool(1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError):
            pool.run([Job(test=get_test("SB"), model="axiomatic")])


class TestServiceCore:
    def test_compute_then_lru_hit(self):
        async def scenario():
            service = make_service()
            await service.start()
            try:
                status, first = await service.handle_explore({"test": "SB"})
                assert status == 200 and first["ok"]
                assert first["results"][0]["served_from"] == "computed"
                status, second = await service.handle_explore({"test": "SB"})
                assert second["results"][0]["served_from"] == "lru"
                assert (
                    second["results"][0]["outcome_digest"]
                    == first["results"][0]["outcome_digest"]
                )
                snapshot = service.stats_snapshot()
                assert snapshot["served"]["computed"] == 1
                assert snapshot["served"]["lru"] == 1
                assert snapshot["cache_hit_rate"] == 0.5
            finally:
                await service.stop()

        run_async(scenario())

    def test_identical_inflight_requests_coalesce(self):
        async def scenario():
            # A generous batch window keeps the first job in flight while
            # the identical followers arrive, making coalescing
            # deterministic rather than a timing accident.
            service = make_service(batch_max_delay=0.2)
            await service.start()
            try:
                request = {"test": "LB", "models": ["promising"]}
                responses = await asyncio.gather(
                    *(service.handle_explore(request) for _ in range(3))
                )
                snapshot = service.stats_snapshot()
                assert snapshot["served"]["computed"] == 1
                assert snapshot["served"]["coalesced"] == 2
                assert snapshot["batches"]["jobs"] == 1
                digests = {
                    response["results"][0]["outcome_digest"]
                    for _status, response in responses
                }
                assert len(digests) == 1
                kinds = sorted(
                    response["results"][0]["served_from"] for _status, response in responses
                )
                assert kinds == ["coalesced", "coalesced", "computed"]
            finally:
                await service.stop()

        run_async(scenario())

    def test_disk_cache_survives_restart(self, tmp_path):
        async def scenario():
            first = make_service(cache_dir=str(tmp_path))
            await first.start()
            try:
                await first.handle_explore({"test": "SB"})
            finally:
                await first.stop()
            second = make_service(cache_dir=str(tmp_path))
            await second.start()
            try:
                _status, response = await second.handle_explore({"test": "SB"})
                assert response["results"][0]["served_from"] == "disk"
                # Promotion: the next hit comes from the in-process LRU.
                _status, response = await second.handle_explore({"test": "SB"})
                assert response["results"][0]["served_from"] == "lru"
            finally:
                await second.stop()

        run_async(scenario())

    def test_truncation_warning_flows_to_response(self):
        async def scenario():
            service = make_service()
            await service.start()
            try:
                status, response = await service.handle_explore(
                    {"test": "SB", "options": {"max_states": 1}}
                )
                assert status == 200
                row = response["results"][0]
                assert row["truncated"] is True
                assert row["warning"] and "truncated" in row["warning"]
                assert row["matches_expectation"] is None
            finally:
                await service.stop()

        run_async(scenario())

    def test_bad_request_is_400_and_counted(self):
        async def scenario():
            service = make_service()
            await service.start()
            try:
                status, response = await service.handle_explore({"test": "nope"})
                assert status == 400 and not response["ok"]
                assert service.stats.bad_requests == 1
                assert service.stats_snapshot()["requests"] == 0
            finally:
                await service.stop()

        run_async(scenario())

    def test_stop_fails_pending_requests_instead_of_hanging(self):
        async def scenario():
            # A huge batch window guarantees the request is still queued
            # when the service stops; the waiter must get a 503, not hang.
            service = make_service(batch_max_delay=30.0)
            await service.start()
            pending = asyncio.create_task(service.handle_explore({"test": "SB"}))
            await asyncio.sleep(0.05)
            await service.stop()
            status, response = await asyncio.wait_for(pending, timeout=5.0)
            assert status == 503 and not response["ok"]

        run_async(scenario())

    def test_include_outcomes_false_omits_payload(self):
        async def scenario():
            service = make_service()
            await service.start()
            try:
                _status, response = await service.handle_explore(
                    {"test": "SB", "options": {"include_outcomes": False}}
                )
                assert "outcomes" not in response["results"][0]
                assert response["results"][0]["n_outcomes"] is not None
            finally:
                await service.stop()

        run_async(scenario())


@pytest.fixture(scope="module")
def live_service():
    """A real server on an ephemeral port, driven through the client."""
    ready: "queue.Queue[tuple[str, int]]" = queue.Queue()
    config = ServiceConfig(workers=1, batch_max_delay=0.0, lru_capacity=64)
    thread = threading.Thread(
        target=run_server,
        args=(config, "127.0.0.1", 0),
        kwargs={"on_ready": lambda host, port: ready.put((host, port))},
        daemon=True,
    )
    thread.start()
    host, port = ready.get(timeout=30)
    client = ServiceClient(host, port, timeout=60.0)
    client.wait_until_ready(30)
    yield client
    client.shutdown()
    thread.join(timeout=30)


class TestHttpRoundTrip:
    def test_healthz(self, live_service):
        health = live_service.healthz()
        assert health["status"] == "ok"
        assert health["pool"] == "inline"

    def test_explore_and_warm_hit(self, live_service):
        first = live_service.explore(test="MP+dmb+addr", models=["promising", "axiomatic"])
        assert first["ok"] and first["test"] == "MP+dmb+addr"
        verdicts = {row["model"]: row["verdict"] for row in first["results"]}
        assert verdicts == {"promising": "forbidden", "axiomatic": "forbidden"}
        second = live_service.explore(test="MP+dmb+addr", models=["promising", "axiomatic"])
        assert all(row["served_from"] == "lru" for row in second["results"])

    def test_source_round_trip(self, live_service):
        response = live_service.explore(source=MP_SOURCE, models="promising")
        assert response["ok"] and response["results"][0]["verdict"] == "allowed"
        assert response["results"][0]["outcomes"]

    def test_stats_endpoint(self, live_service):
        live_service.explore(test="SB")
        stats = live_service.stats()
        assert stats["requests"] >= 1
        assert stats["served"]["computed"] >= 1
        assert stats["latency_seconds"]["p50"] is not None

    def test_client_error_carries_status(self, live_service):
        with pytest.raises(ServiceClientError) as excinfo:
            live_service.explore(test="not-a-test")
        assert excinfo.value.status == 400

    def test_unknown_endpoint_is_404(self, live_service):
        with pytest.raises(ServiceClientError) as excinfo:
            live_service._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_negative_content_length_is_400(self, live_service):
        import socket

        with socket.create_connection((live_service.host, live_service.port)) as sock:
            sock.sendall(
                b"POST /explore HTTP/1.1\r\n"
                b"Content-Length: -1\r\n\r\n"
            )
            reply = sock.recv(4096).decode()
        assert reply.startswith("HTTP/1.1 400")

    def test_header_flood_is_431(self, live_service):
        import socket

        flood = b"".join(b"x-filler-%d: y\r\n" % i for i in range(200))
        with socket.create_connection((live_service.host, live_service.port)) as sock:
            sock.sendall(b"GET /healthz HTTP/1.1\r\n" + flood + b"\r\n")
            reply = sock.recv(4096).decode()
        assert reply.startswith("HTTP/1.1 431")
