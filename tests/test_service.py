"""Tests for the long-lived exploration service.

Covers request normalization, the resident :class:`WorkerPool`, the
caching/coalescing engine (the coalesced-counter assertion is an
acceptance criterion of the service PR), and a live HTTP round-trip
through the blocking client — the same path the CI smoke job drives.
"""

import asyncio
import queue
import threading

import pytest

from repro.harness.jobs import Job, execute_job
from repro.harness.scheduler import WorkerPool
from repro.lang.kinds import Arch
from repro.litmus import get_test
from repro.service import (
    ExplorationService,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    ServiceError,
    TokenBuckets,
    percentile,
)
from repro.service.http import run_server

MP_SOURCE = (
    "AArch64 MP-service\n"
    "{ 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x; }\n"
    " P0          | P1          ;\n"
    " MOV W0,#1   | LDR W0,[X1] ;\n"
    " STR W0,[X1] | LDR W2,[X3] ;\n"
    " STR W0,[X3] |             ;\n"
    "exists (1:X0=1 /\\ 1:X2=0)\n"
)


def make_service(**overrides) -> ExplorationService:
    defaults = dict(workers=1, batch_max_delay=0.0)
    defaults.update(overrides)
    return ExplorationService(ServiceConfig(**defaults))


def run_async(coroutine):
    return asyncio.run(coroutine)


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 0.5) is None

    def test_nearest_rank(self):
        values = [0.1, 0.2, 0.3, 0.4]
        assert percentile(values, 0.5) == 0.2
        assert percentile(values, 0.95) == 0.4
        assert percentile([7.0], 0.95) == 7.0


class TestNormalize:
    def normalize(self, payload, **overrides):
        return make_service(**overrides).normalize(payload)

    def test_requires_exactly_one_of_source_and_test(self):
        with pytest.raises(ServiceError):
            self.normalize({})
        with pytest.raises(ServiceError):
            self.normalize({"test": "MP", "source": MP_SOURCE})

    def test_catalogue_test(self):
        request = self.normalize({"test": "MP", "models": ["promising", "axiomatic"]})
        assert request.name == "MP" and request.arch is Arch.ARM
        assert [job.model for job in request.jobs] == ["promising", "axiomatic"]
        assert len({job.fingerprint() for job in request.jobs}) == 2

    def test_source_arch_comes_from_header(self):
        request = self.normalize({"source": MP_SOURCE})
        assert request.arch is Arch.ARM and request.name == "MP-service"

    def test_explicit_arch_and_comma_models(self):
        request = self.normalize({"test": "SB", "arch": "riscv", "models": "promising,flat"})
        assert request.arch is Arch.RISCV
        assert request.models == ("promising", "flat")

    def test_models_deduped(self):
        request = self.normalize({"test": "SB", "models": ["promising", "promising"]})
        assert request.models == ("promising",)

    def test_unknown_model_arch_and_test(self):
        with pytest.raises(ServiceError):
            self.normalize({"test": "SB", "models": ["quantum"]})
        with pytest.raises(ServiceError):
            self.normalize({"test": "SB", "arch": "ia64"})
        with pytest.raises(ServiceError):
            self.normalize({"test": "definitely-not-a-test"})

    def test_unparseable_source_is_client_error(self):
        with pytest.raises(ServiceError):
            self.normalize({"source": "this is not litmus"})

    def test_option_bounds(self):
        with pytest.raises(ServiceError):
            self.normalize({"test": "SB", "options": {"loop_bound": 0}})
        with pytest.raises(ServiceError):
            self.normalize({"test": "SB", "options": {"loop_bound": 99}})
        with pytest.raises(ServiceError):
            self.normalize({"test": "SB", "options": {"timeout": -1}})
        with pytest.raises(ServiceError):
            self.normalize({"test": "SB", "options": {"max_states": 0}})
        # Over-limit timeouts are rejected like every other option, not
        # silently clamped.
        with pytest.raises(ServiceError):
            self.normalize({"test": "SB", "options": {"timeout": 10_000}})
        request = self.normalize({"test": "SB", "options": {"timeout": 5}})
        assert request.timeout == 5.0

    def test_oversized_source_is_413(self):
        with pytest.raises(ServiceError) as excinfo:
            self.normalize({"source": MP_SOURCE}, max_source_bytes=8)
        assert excinfo.value.status == 413

    def test_options_shape_job_fingerprints(self):
        loose = self.normalize({"test": "SB"})
        tight = self.normalize({"test": "SB", "options": {"max_states": 17}})
        assert loose.jobs[0].fingerprint() != tight.jobs[0].fingerprint()

    def test_deadline_option_bounds(self):
        for bad in (True, "2", 0, -1.0, 10_000):
            with pytest.raises(ServiceError):
                self.normalize({"test": "SB", "options": {"deadline_seconds": bad}})
        request = self.normalize({"test": "SB", "options": {"deadline_seconds": 2}})
        assert request.deadline_seconds == 2.0

    def test_deadline_shapes_job_fingerprints(self):
        # The deadline enters the search config, so deadline-tier answers
        # never collide with exhaustive ones in any cache layer.
        full = self.normalize({"test": "SB"})
        tiered = self.normalize({"test": "SB", "options": {"deadline_seconds": 2}})
        assert full.jobs[0].fingerprint() != tiered.jobs[0].fingerprint()


class TestTokenBuckets:
    def test_rates_must_be_positive(self):
        with pytest.raises(ValueError):
            TokenBuckets(0, 1.0)
        with pytest.raises(ValueError):
            TokenBuckets(5, 0)

    def test_spend_refill_and_retry_after(self):
        clock = [0.0]
        buckets = TokenBuckets(2, 4.0, clock=lambda: clock[0])
        assert buckets.take("alice") is None
        assert buckets.take("alice") is None
        # Bucket empty: the wait is exactly the refill time for one token.
        assert buckets.take("alice") == pytest.approx(0.25)
        clock[0] += 0.25
        assert buckets.take("alice") is None

    def test_cost_above_capacity_drains_a_full_bucket(self):
        # A burst bigger than the bucket is admitted (capacity is a burst
        # cap, not a hard request-size wall) and empties the bucket.
        buckets = TokenBuckets(2, 1.0, clock=lambda: 0.0)
        assert buckets.take("bob", cost=10) is None
        assert buckets.take("bob") == pytest.approx(1.0)

    def test_clients_have_independent_buckets(self):
        buckets = TokenBuckets(1, 1.0, clock=lambda: 0.0)
        assert buckets.take("alice") is None
        assert buckets.take("alice") is not None
        assert buckets.take("bob") is None


class TestWorkerPool:
    def test_results_match_serial_execution(self):
        jobs = [Job(test=get_test(name), model="axiomatic") for name in ("SB", "MP")]
        with WorkerPool(2) as pool:
            pooled = pool.run(jobs)
        serial = [execute_job(job) for job in jobs]
        for a, b in zip(pooled, serial):
            assert a.name == b.name
            assert set(a.outcomes) == set(b.outcomes)

    def test_pool_stays_warm_across_batches(self):
        job = Job(test=get_test("SB"), model="axiomatic")
        with WorkerPool(1) as pool:
            pool.run([job])
            pool.run([job])
            assert pool.batches == 2 and pool.jobs_executed == 2

    def test_on_result_streams_every_index(self):
        jobs = [Job(test=get_test(name), model="axiomatic") for name in ("SB", "MP", "LB")]
        seen = {}
        with WorkerPool(2) as pool:
            pool.run(jobs, on_result=lambda index, result: seen.__setitem__(index, result))
        assert sorted(seen) == [0, 1, 2]

    def test_timeout_sequence_must_match(self):
        job = Job(test=get_test("SB"), model="axiomatic")
        with WorkerPool(1) as pool:
            with pytest.raises(ValueError):
                pool.run([job, job], timeout=[1.0])

    def test_closed_pool_rejects_work(self):
        pool = WorkerPool(1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError):
            pool.run([Job(test=get_test("SB"), model="axiomatic")])


class TestServiceCore:
    def test_compute_then_lru_hit(self):
        async def scenario():
            service = make_service()
            await service.start()
            try:
                status, first = await service.handle_explore({"test": "SB"})
                assert status == 200 and first["ok"]
                assert first["results"][0]["served_from"] == "computed"
                status, second = await service.handle_explore({"test": "SB"})
                assert second["results"][0]["served_from"] == "lru"
                assert (
                    second["results"][0]["outcome_digest"]
                    == first["results"][0]["outcome_digest"]
                )
                snapshot = service.stats_snapshot()
                assert snapshot["served"]["computed"] == 1
                assert snapshot["served"]["lru"] == 1
                assert snapshot["cache_hit_rate"] == 0.5
            finally:
                await service.stop()

        run_async(scenario())

    def test_identical_inflight_requests_coalesce(self):
        async def scenario():
            # A generous batch window keeps the first job in flight while
            # the identical followers arrive, making coalescing
            # deterministic rather than a timing accident.
            service = make_service(batch_max_delay=0.2)
            await service.start()
            try:
                request = {"test": "LB", "models": ["promising"]}
                responses = await asyncio.gather(
                    *(service.handle_explore(request) for _ in range(3))
                )
                snapshot = service.stats_snapshot()
                assert snapshot["served"]["computed"] == 1
                assert snapshot["served"]["coalesced"] == 2
                assert snapshot["batches"]["jobs"] == 1
                digests = {
                    response["results"][0]["outcome_digest"]
                    for _status, response in responses
                }
                assert len(digests) == 1
                kinds = sorted(
                    response["results"][0]["served_from"] for _status, response in responses
                )
                assert kinds == ["coalesced", "coalesced", "computed"]
            finally:
                await service.stop()

        run_async(scenario())

    def test_disk_cache_survives_restart(self, tmp_path):
        async def scenario():
            first = make_service(cache_dir=str(tmp_path))
            await first.start()
            try:
                await first.handle_explore({"test": "SB"})
            finally:
                await first.stop()
            second = make_service(cache_dir=str(tmp_path))
            await second.start()
            try:
                _status, response = await second.handle_explore({"test": "SB"})
                assert response["results"][0]["served_from"] == "disk"
                # Promotion: the next hit comes from the in-process LRU.
                _status, response = await second.handle_explore({"test": "SB"})
                assert response["results"][0]["served_from"] == "lru"
            finally:
                await second.stop()

        run_async(scenario())

    def test_truncation_warning_flows_to_response(self):
        async def scenario():
            service = make_service()
            await service.start()
            try:
                status, response = await service.handle_explore(
                    {"test": "SB", "options": {"max_states": 1}}
                )
                assert status == 200
                row = response["results"][0]
                assert row["truncated"] is True
                assert row["warning"] and "truncated" in row["warning"]
                assert row["matches_expectation"] is None
            finally:
                await service.stop()

        run_async(scenario())

    def test_bad_request_is_400_and_counted(self):
        async def scenario():
            service = make_service()
            await service.start()
            try:
                status, response = await service.handle_explore({"test": "nope"})
                assert status == 400 and not response["ok"]
                assert service.stats.bad_requests == 1
                assert service.stats_snapshot()["requests"] == 0
            finally:
                await service.stop()

        run_async(scenario())

    def test_stop_fails_pending_requests_instead_of_hanging(self):
        async def scenario():
            # A huge batch window guarantees the request is still queued
            # when the service stops; the waiter must get a 503, not hang.
            service = make_service(batch_max_delay=30.0)
            await service.start()
            pending = asyncio.create_task(service.handle_explore({"test": "SB"}))
            await asyncio.sleep(0.05)
            await service.stop()
            status, response = await asyncio.wait_for(pending, timeout=5.0)
            assert status == 503 and not response["ok"]

        run_async(scenario())

    def test_include_outcomes_false_omits_payload(self):
        async def scenario():
            service = make_service()
            await service.start()
            try:
                _status, response = await service.handle_explore(
                    {"test": "SB", "options": {"include_outcomes": False}}
                )
                assert "outcomes" not in response["results"][0]
                assert response["results"][0]["n_outcomes"] is not None
            finally:
                await service.stop()

        run_async(scenario())

    def test_deadline_tier_response_is_flagged_and_billed(self):
        async def scenario():
            service = make_service()
            await service.start()
            try:
                status, response = await service.handle_explore(
                    {"test": "MP", "options": {"deadline_seconds": 0.000001}}
                )
                assert status == 200
                # The response says which budget shaped it and that the
                # verdict is partial, per row and at the top level.
                assert response["deadline_seconds"] == pytest.approx(1e-6)
                assert response["truncated"] is True
                row = response["results"][0]
                assert row["truncated"] is True
                assert row["warning"]
                assert row["matches_expectation"] is None
                assert "sampled" in row
                # Billed through the same per-request cost block.
                assert row["cost"]["served_from"] == "computed"
            finally:
                await service.stop()

        run_async(scenario())

    def test_exhaustive_responses_carry_no_deadline_fields(self):
        async def scenario():
            service = make_service()
            await service.start()
            try:
                status, response = await service.handle_explore({"test": "SB"})
                assert status == 200
                assert "deadline_seconds" not in response
                assert "truncated" not in response
            finally:
                await service.stop()

        run_async(scenario())


class TestAdmissionControl:
    def test_queue_depth_gate_is_429_with_retry_after(self):
        async def scenario():
            # One job already queued (the huge batch window keeps it there)
            # fills the whole admission budget; the next request bounces.
            service = make_service(batch_max_delay=30.0, max_pending_jobs=1)
            await service.start()
            pending = asyncio.create_task(service.handle_explore({"test": "SB"}))
            await asyncio.sleep(0.05)
            status, response = await service.handle_explore({"test": "MP"})
            assert status == 429 and not response["ok"]
            assert response["retry_after"] == pytest.approx(
                service.config.admission_retry_after
            )
            assert service.stats.admission_rejections == 1
            await service.stop()
            await asyncio.wait_for(pending, timeout=5.0)

        run_async(scenario())

    def test_quota_exhaustion_is_429_per_client(self):
        async def scenario():
            service = make_service(quota_tokens=2.0, quota_refill_per_second=0.5)
            await service.start()
            try:
                for _ in range(2):
                    status, _ = await service.handle_explore(
                        {"test": "SB"}, client_id="alice"
                    )
                    assert status == 200
                status, response = await service.handle_explore(
                    {"test": "SB"}, client_id="alice"
                )
                assert status == 429 and not response["ok"]
                assert "quota" in response["error"]
                # ~2s to refill one token at 0.5/s, minus whatever trickled
                # back in while the first two requests ran.
                assert 0 < response["retry_after"] <= 2.0
                assert service.stats.quota_rejections == 1
                # Another identity is unaffected — quotas are per client.
                status, _ = await service.handle_explore(
                    {"test": "SB"}, client_id="bob"
                )
                assert status == 200
            finally:
                await service.stop()

        run_async(scenario())

    def test_quota_cost_is_jobs_not_requests(self):
        async def scenario():
            service = make_service(quota_tokens=2.0, quota_refill_per_second=0.1)
            await service.start()
            try:
                # One two-model request spends both tokens at once.
                status, _ = await service.handle_explore(
                    {"test": "SB", "models": ["promising", "axiomatic"]},
                    client_id="alice",
                )
                assert status == 200
                status, _ = await service.handle_explore(
                    {"test": "SB"}, client_id="alice"
                )
                assert status == 429
            finally:
                await service.stop()

        run_async(scenario())


class TestGracefulDrain:
    def test_drain_serves_cache_and_inflight_but_rejects_cold_work(self):
        async def scenario():
            service = make_service(batch_max_delay=0.05)
            await service.start()
            _, warm = await service.handle_explore({"test": "SB"})
            assert warm["ok"]
            # In-flight work admitted before the drain began must finish.
            inflight = asyncio.create_task(service.handle_explore({"test": "MP"}))
            await asyncio.sleep(0.01)
            service.begin_drain()
            # New cold work is turned away with an explicit come-back-later.
            status, rejected = await service.handle_explore({"test": "LB"})
            assert status == 503 and not rejected["ok"]
            assert rejected["retry_after"] == pytest.approx(
                service.config.drain_retry_after
            )
            assert service.stats.drain_rejections == 1
            # Cache hits still answer during the drain.
            status, cached = await service.handle_explore({"test": "SB"})
            assert status == 200
            assert cached["results"][0]["served_from"] == "lru"
            status, finished = await asyncio.wait_for(inflight, timeout=10.0)
            assert status == 200 and finished["ok"]
            assert await service.drain(timeout=10.0)
            assert service.healthz()["status"] == "draining"
            await service.stop()

        run_async(scenario())

    def test_drain_times_out_rather_than_hanging(self):
        async def scenario():
            # Nothing will ever flush a 30s batch window; drain must give
            # up at its own deadline, not wait the window out.
            service = make_service(batch_max_delay=30.0)
            await service.start()
            pending = asyncio.create_task(service.handle_explore({"test": "SB"}))
            await asyncio.sleep(0.05)
            service.begin_drain()
            assert not await service.drain(timeout=0.2)
            await service.stop()
            await asyncio.wait_for(pending, timeout=5.0)

        run_async(scenario())


@pytest.fixture(scope="module")
def live_service():
    """A real server on an ephemeral port, driven through the client."""
    ready: "queue.Queue[tuple[str, int]]" = queue.Queue()
    config = ServiceConfig(workers=1, batch_max_delay=0.0, lru_capacity=64)
    thread = threading.Thread(
        target=run_server,
        args=(config, "127.0.0.1", 0),
        kwargs={"on_ready": lambda host, port: ready.put((host, port))},
        daemon=True,
    )
    thread.start()
    host, port = ready.get(timeout=30)
    client = ServiceClient(host, port, timeout=60.0)
    client.wait_until_ready(30)
    yield client
    client.shutdown()
    thread.join(timeout=30)


class TestHttpRoundTrip:
    def test_healthz(self, live_service):
        health = live_service.healthz()
        assert health["status"] == "ok"
        assert health["pool"] == "inline"

    def test_explore_and_warm_hit(self, live_service):
        first = live_service.explore(test="MP+dmb+addr", models=["promising", "axiomatic"])
        assert first["ok"] and first["test"] == "MP+dmb+addr"
        verdicts = {row["model"]: row["verdict"] for row in first["results"]}
        assert verdicts == {"promising": "forbidden", "axiomatic": "forbidden"}
        second = live_service.explore(test="MP+dmb+addr", models=["promising", "axiomatic"])
        assert all(row["served_from"] == "lru" for row in second["results"])

    def test_source_round_trip(self, live_service):
        response = live_service.explore(source=MP_SOURCE, models="promising")
        assert response["ok"] and response["results"][0]["verdict"] == "allowed"
        assert response["results"][0]["outcomes"]

    def test_stats_endpoint(self, live_service):
        live_service.explore(test="SB")
        stats = live_service.stats()
        assert stats["requests"] >= 1
        assert stats["served"]["computed"] >= 1
        assert stats["latency_seconds"]["p50"] is not None

    def test_client_error_carries_status(self, live_service):
        with pytest.raises(ServiceClientError) as excinfo:
            live_service.explore(test="not-a-test")
        assert excinfo.value.status == 400

    def test_unknown_endpoint_is_404(self, live_service):
        with pytest.raises(ServiceClientError) as excinfo:
            live_service._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_negative_content_length_is_400(self, live_service):
        import socket

        with socket.create_connection((live_service.host, live_service.port)) as sock:
            sock.sendall(
                b"POST /explore HTTP/1.1\r\n"
                b"Content-Length: -1\r\n\r\n"
            )
            reply = sock.recv(4096).decode()
        assert reply.startswith("HTTP/1.1 400")

    def test_header_flood_is_431(self, live_service):
        import socket

        flood = b"".join(b"x-filler-%d: y\r\n" % i for i in range(200))
        with socket.create_connection((live_service.host, live_service.port)) as sock:
            sock.sendall(b"GET /healthz HTTP/1.1\r\n" + flood + b"\r\n")
            reply = sock.recv(4096).decode()
        assert reply.startswith("HTTP/1.1 431")


class _RawHttp:
    """Minimal HTTP response reader over a raw socket.

    Keeps bytes beyond the current response buffered, so back-to-back
    pipelined responses are split correctly instead of discarded.
    """

    def __init__(self, sock):
        self.sock = sock
        self.buffer = b""

    def read_response(self) -> tuple[int, dict, bytes]:
        while b"\r\n\r\n" not in self.buffer:
            chunk = self.sock.recv(4096)
            if not chunk:
                raise ConnectionError("server closed mid-response")
            self.buffer += chunk
        head, _, rest = self.buffer.partition(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        status = int(lines[0].split(" ")[1])
        headers = {}
        for line in lines[1:]:
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        while len(rest) < length:
            chunk = self.sock.recv(4096)
            if not chunk:
                raise ConnectionError("server closed mid-body")
            rest += chunk
        self.buffer = rest[length:]
        return status, headers, rest[:length]


class TestKeepAliveProtocol:
    def test_sequential_requests_reuse_one_connection(self, live_service):
        import socket

        request = (
            b"GET /v1/healthz HTTP/1.1\r\nHost: svc\r\n\r\n"
        )
        with socket.create_connection((live_service.host, live_service.port)) as sock:
            http = _RawHttp(sock)
            for _ in range(3):
                sock.sendall(request)
                status, headers, _body = http.read_response()
                assert status == 200
                assert headers["connection"] == "keep-alive"

    def test_pipelined_responses_come_back_in_request_order(self, live_service):
        import json
        import socket

        def explore(test, request_id):
            body = json.dumps({"test": test}).encode()
            return (
                b"POST /v1/explore HTTP/1.1\r\nHost: svc\r\n"
                b"X-Request-Id: " + request_id.encode() + b"\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
            )

        # All three hit the wire before any response is read; HTTP/1.1
        # demands answers in request order even when they finish out of it.
        wire = explore("SB", "pipe-0") + explore("MP", "pipe-1") + explore("LB", "pipe-2")
        with socket.create_connection((live_service.host, live_service.port)) as sock:
            http = _RawHttp(sock)
            sock.sendall(wire)
            for index, expected_test in enumerate(["SB", "MP", "LB"]):
                status, headers, body = http.read_response()
                assert status == 200
                assert headers["x-request-id"] == f"pipe-{index}"
                assert json.loads(body)["test"] == expected_test

    def test_connection_close_is_honoured(self, live_service):
        import socket

        with socket.create_connection((live_service.host, live_service.port)) as sock:
            sock.sendall(b"GET /v1/healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            status, headers, _body = _RawHttp(sock).read_response()
            assert status == 200
            assert headers["connection"] == "close"
            assert sock.recv(4096) == b""  # server actually closed

    def test_client_pool_reuses_connections(self, live_service):
        before = live_service.stats()["http"]
        for _ in range(4):
            live_service.explore(test="SB")
        after = live_service.stats()["http"]
        # Six requests (4 explores + 2 stats) rode existing connections.
        assert after["requests"] - before["requests"] == 5
        assert after["connections"] == before["connections"]


class TestVersioningShim:
    def test_legacy_paths_answer_with_deprecation_header(self, live_service):
        legacy = ServiceClient(live_service.host, live_service.port, api_prefix="")
        try:
            status, headers, _body = legacy._raw_request("GET", "/healthz")
            assert status == 200
            assert headers["deprecation"] == "true"
            assert 'rel="successor-version"' in headers["link"]
            # The deprecated surface still fully works.
            response = legacy.explore(test="SB")
            assert response["ok"]
        finally:
            legacy.close()

    def test_versioned_paths_carry_no_deprecation_header(self, live_service):
        status, headers, _body = live_service._raw_request("GET", "/v1/healthz")
        assert status == 200
        assert "deprecation" not in headers

    def test_deadline_tier_over_http(self, live_service):
        response = live_service.explore(
            test="LB", options={"deadline_seconds": 0.000001}
        )
        assert response["truncated"] is True
        assert response["deadline_seconds"] == pytest.approx(1e-6)
        row = response["results"][0]
        assert row["truncated"] is True and "sampled" in row


@pytest.fixture()
def quota_service():
    """A server with a tiny per-client quota (the 429 path, end to end)."""
    ready: "queue.Queue[tuple[str, int]]" = queue.Queue()
    config = ServiceConfig(
        workers=1,
        batch_max_delay=0.0,
        quota_tokens=2.0,
        quota_refill_per_second=2.0,
    )
    thread = threading.Thread(
        target=run_server,
        args=(config, "127.0.0.1", 0),
        kwargs={"on_ready": lambda host, port: ready.put((host, port))},
        daemon=True,
    )
    thread.start()
    host, port = ready.get(timeout=30)
    yield host, port
    ServiceClient(host, port).shutdown()
    thread.join(timeout=30)


class TestQuotaOverHttp:
    def test_exhaustion_is_429_with_retry_after(self, quota_service):
        host, port = quota_service
        with ServiceClient(host, port, client_id="greedy") as client:
            client.wait_until_ready(30)
            client.explore(test="SB", options={"include_outcomes": False})
            client.explore(test="SB", options={"include_outcomes": False})
            with pytest.raises(ServiceClientError) as excinfo:
                client.explore(
                    test="SB", options={"include_outcomes": False}, retry=False
                )
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after >= 1  # header is ceil'd to whole seconds

    def test_client_retries_past_429_honouring_retry_after(self, quota_service):
        host, port = quota_service
        with ServiceClient(host, port, client_id="patient") as client:
            client.wait_until_ready(30)
            for _ in range(3):  # third call drains the bucket and must retry
                response = client.explore(
                    test="SB", options={"include_outcomes": False}
                )
                assert response["ok"]
            assert client.retries >= 1
