"""The unified search kernel and its pluggable strategies.

Pins the PR 5 contract:

* the kernel itself — frontier discipline, dedup accounting, state and
  wall-clock budgets, truncation flags — on a toy graph;
* exhaustive strategies are interchangeable (``bfs`` finds the same
  outcome set as ``dfs``) on every explorer;
* ``sample`` is a *sound under-approximation*: over a randomized corpus
  slice on both architectures, every sampled outcome appears in the
  exhaustive set (property test), and a fixed seed reproduces the exact
  same outcome set (determinism test);
* sampled results are never authoritative: fingerprints (and hence the
  persistent/LRU caches) key strategy + sampling budget, the fuzz policy
  compares them by containment only, and verdict checks abstain on a
  sampled ``forbidden``.
"""

import dataclasses
import random

import pytest

from repro.explore import (
    STRATEGIES,
    BaseSearchConfig,
    BreadthFirst,
    DepthFirst,
    RandomWalks,
    SearchKernel,
    is_exhaustive,
    make_strategy,
    strategy_for,
)
from repro.flat import FlatConfig, explore_flat
from repro.harness import (
    Job,
    LruResultCache,
    ResultCache,
    differential_mismatches,
    execute_job,
    find_mismatches,
)
from repro.lang.kinds import Arch
from repro.litmus import generate_cycle_battery, get_test
from repro.litmus.test import Verdict
from repro.outcomes import Outcome, OutcomeSet
from repro.promising import ExploreConfig, explore, explore_naive


def corpus_sample(count=6, seed=11):
    """Deterministic random sample of small cycle-corpus tests."""
    tests = generate_cycle_battery(
        families=("MP", "SB", "LB", "S", "R", "2+2W", "WRC", "CoRR"),
        max_per_family=5,
    )
    return random.Random(seed).sample(tests, count)


# ---------------------------------------------------------------------------
# Kernel mechanics on a toy graph
# ---------------------------------------------------------------------------


def _binary_tree(depth):
    """Successors of a toy binary tree of the given depth, with a sink."""

    def successors(node):
        if len(node) >= depth:
            return []
        return [node + (0,), node + (1,)]

    return successors


class TestSearchKernel:
    def test_dfs_visits_the_whole_tree_once(self):
        kernel = SearchKernel(
            _binary_tree(3), strategy=DepthFirst(), max_states=1000, key_fn=lambda n: n
        )
        kernel.run([()])
        # 1 + 2 + 4 + 8 nodes, every edge taken, nothing deduplicated.
        assert kernel.stats.states == 15
        assert kernel.stats.transitions == 14
        assert kernel.stats.dedup_hits == 0
        assert not kernel.stats.truncated

    def test_bfs_visits_the_same_states(self):
        dfs = SearchKernel(
            _binary_tree(3), strategy=DepthFirst(), max_states=1000, key_fn=lambda n: n
        )
        bfs = SearchKernel(
            _binary_tree(3), strategy=BreadthFirst(), max_states=1000, key_fn=lambda n: n
        )
        dfs.run([()])
        bfs.run([()])
        assert dfs.stats.states == bfs.stats.states
        assert dfs.stats.transitions == bfs.stats.transitions

    def test_dedup_prunes_reconverging_paths(self):
        # A diamond: two paths reconverge on the same node.
        graph = {"a": ["b", "c"], "b": ["d"], "c": ["d"], "d": []}
        kernel = SearchKernel(
            graph.__getitem__, strategy=DepthFirst(), max_states=1000, key_fn=lambda n: n
        )
        kernel.run(["a"])
        assert kernel.stats.states == 4  # d expanded once
        assert kernel.stats.dedup_hits == 1

    def test_max_states_budget_marks_truncated(self):
        kernel = SearchKernel(
            _binary_tree(10), strategy=DepthFirst(), max_states=5, key_fn=lambda n: n
        )
        kernel.run([()])
        assert kernel.stats.truncated
        assert kernel.stats.states == 6  # the budget-tripping pop is counted

    def test_deadline_marks_truncated_and_deadline_hit(self):
        kernel = SearchKernel(
            _binary_tree(10),
            strategy=DepthFirst(),
            max_states=10**6,
            deadline_seconds=0.0,
            key_fn=lambda n: n,
        )
        kernel.run([()])
        assert kernel.stats.truncated and kernel.stats.deadline_hit

    def test_sample_walks_are_seeded_and_counted(self):
        strategy = RandomWalks(samples=7, depth=100, seed=42)
        kernel = SearchKernel(
            _binary_tree(4), strategy=strategy, max_states=10**6, key_fn=lambda n: n
        )
        kernel.run([()])
        assert kernel.stats.samples_run == 7
        assert kernel.stats.sample_steps == 7 * 4  # every walk reaches a leaf
        assert 0 < kernel.stats.coverage_estimate <= 1.0
        # Sampling must not prune: no visited set is consulted.
        assert kernel.stats.dedup_hits == 0

    def test_sample_depth_bound_abandons_walks(self):
        def endless(node):
            return [node + 1]

        strategy = RandomWalks(samples=3, depth=5, seed=0)
        kernel = SearchKernel(endless, strategy=strategy, max_states=10**6)
        kernel.run([0])
        assert kernel.stats.sample_depth_hits == 3
        # Abandoned walks are not "completed": samples_run must not count
        # them, or a run whose every walk died at the depth bound would
        # report itself as fully executed.
        assert kernel.stats.samples_run == 0
        # No key_fn: coverage was not measured, so the estimate must stay
        # None rather than reading as "fully saturated" (0.0).
        assert kernel.stats.coverage_estimate is None

    def test_strategy_registry(self):
        assert set(STRATEGIES) == {"dfs", "bfs", "sample"}
        assert is_exhaustive("dfs") and is_exhaustive("bfs")
        assert not is_exhaustive("sample")
        with pytest.raises(ValueError):
            make_strategy("montecarlo")
        with pytest.raises(ValueError):
            make_strategy("sample", samples=0)

    def test_strategy_for_reads_the_config(self):
        config = BaseSearchConfig(strategy="sample", samples=9, sample_depth=17, seed=3)
        strategy = strategy_for(config)
        assert isinstance(strategy, RandomWalks)
        assert (strategy.samples, strategy.depth, strategy.seed) == (9, 17, 3)
        assert not config.exhaustive and BaseSearchConfig().exhaustive


# ---------------------------------------------------------------------------
# Strategy properties on the real explorers
# ---------------------------------------------------------------------------


class TestExhaustiveStrategiesAgree:
    @pytest.mark.parametrize("test", corpus_sample(count=4, seed=2), ids=lambda t: t.name)
    def test_bfs_matches_dfs(self, test):
        locs = tuple(test.observable_locations())
        dfs = explore(test.program, ExploreConfig(shared_locations=locs))
        bfs = explore(test.program, ExploreConfig(shared_locations=locs, strategy="bfs"))
        assert set(dfs.outcomes) == set(bfs.outcomes), test.name
        assert bfs.stats.strategy == "bfs" and not bfs.stats.sampled

    def test_bfs_matches_dfs_on_naive_and_flat(self):
        test = get_test("MP")
        naive_dfs = explore_naive(test.program, ExploreConfig())
        naive_bfs = explore_naive(test.program, ExploreConfig(strategy="bfs"))
        assert set(naive_dfs.outcomes) == set(naive_bfs.outcomes)
        flat_dfs = explore_flat(test.program, FlatConfig())
        flat_bfs = explore_flat(test.program, FlatConfig(strategy="bfs"))
        assert set(flat_dfs.outcomes) == set(flat_bfs.outcomes)


SAMPLE = dict(strategy="sample", samples=48, sample_depth=512)


class TestSampleSoundness:
    """sample ⊆ exhaustive, per explorer, both architectures, fixed seeds."""

    @pytest.mark.parametrize("arch", [Arch.ARM, Arch.RISCV], ids=lambda a: a.value)
    @pytest.mark.parametrize("test", corpus_sample(), ids=lambda t: t.name)
    def test_promising_sample_subset_of_exhaustive(self, test, arch):
        locs = tuple(test.observable_locations())
        full = explore(test.program, ExploreConfig(arch=arch, shared_locations=locs))
        sampled = explore(
            test.program,
            ExploreConfig(arch=arch, shared_locations=locs, seed=13, **SAMPLE),
        )
        assert set(sampled.outcomes) <= set(full.outcomes), test.name
        assert sampled.stats.sampled and sampled.stats.strategy == "sample"
        assert sampled.stats.samples_run > 0
        assert sampled.stats.coverage_estimate is not None

    @pytest.mark.parametrize("test", corpus_sample(count=3, seed=7), ids=lambda t: t.name)
    def test_naive_sample_subset_of_exhaustive(self, test):
        locs = tuple(test.observable_locations())
        full = explore_naive(test.program, ExploreConfig(shared_locations=locs))
        sampled = explore_naive(
            test.program, ExploreConfig(shared_locations=locs, seed=5, **SAMPLE)
        )
        assert set(sampled.outcomes) <= set(full.outcomes), test.name

    @pytest.mark.parametrize("name", ["MP", "SB", "LB", "CoRR"])
    def test_flat_sample_subset_of_exhaustive(self, name):
        test = get_test(name)
        full = explore_flat(test.program, FlatConfig())
        sampled = explore_flat(test.program, FlatConfig(seed=23, **SAMPLE))
        assert set(sampled.outcomes) <= set(full.outcomes), name

    @pytest.mark.parametrize("arch", [Arch.ARM, Arch.RISCV], ids=lambda a: a.value)
    @pytest.mark.parametrize("test", corpus_sample(count=3, seed=19), ids=lambda t: t.name)
    def test_same_seed_reproduces_the_outcome_set(self, test, arch):
        locs = tuple(test.observable_locations())
        config = ExploreConfig(arch=arch, shared_locations=locs, seed=99, **SAMPLE)
        first = explore(test.program, config)
        second = explore(test.program, config)
        assert set(first.outcomes) == set(second.outcomes)
        assert first.stats.samples_run == second.stats.samples_run
        assert first.stats.sample_steps == second.stats.sample_steps
        assert first.stats.unique_sample_states == second.stats.unique_sample_states


# ---------------------------------------------------------------------------
# Sampled results through the harness: caching, reports, fuzz policy
# ---------------------------------------------------------------------------


def _jobs_for(test, *, sample_seed=1):
    exhaustive = Job(test=test, model="promising")
    sampled = Job(
        test=test,
        model="promising",
        explore_config=ExploreConfig(seed=sample_seed, **SAMPLE),
    )
    return exhaustive, sampled


class TestSampledRunsAreNeverAuthoritative:
    def test_fingerprints_key_strategy_and_sampling_budget(self):
        test = get_test("MP")
        exhaustive, sampled = _jobs_for(test)
        assert exhaustive.fingerprint() != sampled.fingerprint()
        # A different sample budget (or seed) is a different result.
        _, other_budget = _jobs_for(test)
        other_budget = dataclasses.replace(
            other_budget,
            explore_config=ExploreConfig(strategy="sample", samples=7, seed=1),
        )
        assert sampled.fingerprint() != other_budget.fingerprint()
        _, other_seed = _jobs_for(test, sample_seed=2)
        assert sampled.fingerprint() != other_seed.fingerprint()

    def test_persistent_cache_never_serves_a_sample_for_an_exhaustive_job(self, tmp_path):
        test = get_test("MP")
        exhaustive, sampled = _jobs_for(test)
        cache = ResultCache(tmp_path)
        sampled_result = execute_job(sampled)
        assert cache.put(sampled, sampled_result)
        assert cache.get(exhaustive) is None  # different fingerprint: miss
        recalled = cache.get(sampled)
        assert recalled is not None and recalled.sampled

    def test_lru_cache_never_serves_a_sample_for_an_exhaustive_job(self):
        test = get_test("MP")
        exhaustive, sampled = _jobs_for(test)
        lru = LruResultCache(capacity=8)
        lru.put(sampled, execute_job(sampled))
        assert lru.get(exhaustive) is None
        assert lru.get(sampled) is not None

    def test_job_result_flags_and_warning(self):
        test = get_test("MP")
        _, sampled = _jobs_for(test)
        result = execute_job(sampled)
        assert result.ok and result.sampled and result.strategy == "sample"
        assert "under-approximation" in result.warning

    def test_sampled_forbidden_verdict_abstains(self):
        # MP's relaxed outcome is reachable; a sample that misses it must
        # not be scored against the expected verdict.
        test = get_test("MP")
        _, sampled = _jobs_for(test)
        result = execute_job(sampled)
        if result.verdict is Verdict.ALLOWED:
            assert result.matches_expectation is (result.expected is Verdict.ALLOWED)
        else:
            assert result.matches_expectation is None


class TestSampledComparisonPolicy:
    def test_fuzz_compares_sampled_by_containment(self):
        test = get_test("MP")
        _, sampled = _jobs_for(test)
        axiomatic = Job(test=test, model="axiomatic")
        jobs = [sampled, axiomatic]
        results = [execute_job(j) for j in jobs]
        counterexamples, _explained = differential_mismatches(jobs, results)
        # sampled promising ⊆ axiomatic holds, so no counterexample even
        # if the sample missed outcomes (equality would flag that).
        assert counterexamples == []

    def test_fuzz_flags_sampled_outcomes_outside_the_exhaustive_set(self):
        test = get_test("MP")
        _, sampled = _jobs_for(test)
        axiomatic = Job(test=test, model="axiomatic")
        sampled_result = execute_job(sampled)
        invented = Outcome.make([{"r1": 77}, {"r2": 77}], {})
        tampered = dataclasses.replace(
            sampled_result,
            outcomes=OutcomeSet(list(sampled_result.outcomes) + [invented]),
        )
        counterexamples, _ = differential_mismatches(
            [sampled, axiomatic], [tampered, execute_job(axiomatic)]
        )
        assert [ce["kind"] for ce in counterexamples] == ["sampled-outcomes-not-contained"]

    def test_fuzz_skips_pairs_where_both_sides_sampled(self):
        test = get_test("MP")
        _, sampled = _jobs_for(test)
        naive_sampled = Job(
            test=test,
            model="promising-naive",
            explore_config=ExploreConfig(seed=4, **SAMPLE),
        )
        sampled_result = execute_job(sampled)
        invented = Outcome.make([{"r1": 88}, {"r2": 88}], {})
        tampered = dataclasses.replace(
            sampled_result,
            outcomes=OutcomeSet(list(sampled_result.outcomes) + [invented]),
        )
        counterexamples, _ = differential_mismatches(
            [sampled, naive_sampled], [tampered, execute_job(naive_sampled)]
        )
        assert counterexamples == []  # two under-approximations: no verdict

    def test_check_agreement_compares_sampled_by_containment(self):
        from repro.litmus import check_agreement

        tests = [get_test("MP"), get_test("SB")]
        report = check_agreement(tests, Arch.ARM, ExploreConfig(seed=21, **SAMPLE))
        # Sampled promising ⊆ axiomatic always holds, so a sparse sample
        # must not be scored as a model disagreement.
        assert report.disagreements == []
        assert report.agreeing == report.total == len(tests)

    def test_cli_rejects_out_of_range_sampling_flags(self):
        from repro.tools.cli import main

        for argv in (
            ["--strategy", "sample", "--samples", "0", "run", "--test", "MP"],
            ["--strategy", "sample", "--sample-depth", "-3", "run", "--test", "MP"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2

    def test_cli_run_axiomatic_uses_containment_for_samples(self, capsys):
        from repro.tools.cli import main

        code = main(
            ["--strategy", "sample", "--samples", "2", "--sample-depth", "1",
             "--seed", "1", "run", "--test", "SB", "--axiomatic"]
        )
        out = capsys.readouterr().out
        assert code == 0
        # A sparse sample is a subset of the axiomatic set; the old
        # equality wording would report "DIFFER" here.
        assert "contained in axiomatic" in out and "DIFFER" not in out

    def test_report_mismatch_pass_is_sampling_aware(self):
        test = get_test("MP")
        exhaustive, sampled = _jobs_for(test)
        results = [execute_job(exhaustive), execute_job(sampled)]
        assert find_mismatches([exhaustive, sampled], results) == []

    def test_report_rows_carry_strategy_fields(self):
        from repro.harness.report import job_entry

        test = get_test("MP")
        exhaustive, sampled = _jobs_for(test)
        row = job_entry(execute_job(sampled))
        assert row["strategy"] == "sample" and row["sampled"] is True
        assert row["samples"] > 0 and 0 < row["coverage_estimate"] <= 1.0
        row = job_entry(execute_job(exhaustive))
        assert row["strategy"] == "dfs" and row["sampled"] is False
        assert row["samples"] is None and row["coverage_estimate"] is None


class TestServiceStrategyOptions:
    def _service(self):
        from repro.service import ExplorationService, ServiceConfig

        return ExplorationService(ServiceConfig(workers=1))

    def test_normalize_threads_strategy_into_both_configs(self):
        service = self._service()
        request = service.normalize(
            {
                "test": "MP",
                "models": ["promising", "flat"],
                "options": {"strategy": "sample", "samples": 12, "sample_depth": 99, "seed": 7},
            }
        )
        for job in request.jobs:
            config = (
                job.effective_explore_config()
                if job.model == "promising"
                else job.effective_flat_config()
            )
            assert config.strategy == "sample"
            assert config.samples == 12 and config.seed == 7
            assert config.sample_depth == 99

    def test_normalize_rejects_bad_strategy_options(self):
        from repro.service import ServiceError

        service = self._service()
        for options in (
            {"strategy": "montecarlo"},
            {"samples": 0},
            {"samples": 10**9},
            {"samples": True},
            {"sample_depth": 0},
            {"sample_depth": True},
            {"seed": "abc"},
            {"seed": True},
        ):
            with pytest.raises(ServiceError):
                service.normalize({"test": "MP", "options": options})
