"""Tests for the comparison utilities and the command-line interface."""


from repro.lang.kinds import Arch
from repro.litmus import get_test
from repro.tools import compare_models, observables
from repro.tools.cli import build_parser, main


class TestCompare:
    def test_observables_cover_program_registers_and_locations(self):
        test = get_test("MP")
        regs, locs = observables(test.program)
        assert regs[1] == ["r1", "r2"]
        assert len(locs) == 2

    def test_compare_promising_and_axiomatic(self):
        comparison = compare_models(get_test("MP+dmb+addr").program, Arch.ARM)
        assert comparison.promising_equals_axiomatic is True
        assert "==" in comparison.describe()

    def test_compare_with_naive_and_flat(self):
        comparison = compare_models(
            get_test("SB").program,
            Arch.ARM,
            include_axiomatic=False,
            include_flat=True,
            include_naive=True,
        )
        assert comparison.promising_equals_naive is True
        assert comparison.flat_subset_of_promising is True
        assert comparison.promising_equals_axiomatic is None


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--test", "MP"])
        assert args.command == "run" and args.test == "MP"
        args = parser.parse_args(["agreement", "--max-tests", "5"])
        assert args.max_tests == 5

    def test_parser_serve_subcommand(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--port", "0", "--workers", "4",
                                  "--batch-delay-ms", "2.5", "--cache-dir", "/tmp/c"])
        assert args.command == "serve" and args.port == 0
        assert args.workers == 4 and args.batch_delay_ms == 2.5
        assert args.cache_dir == "/tmp/c" and args.lru_capacity == 4096

    def test_run_command(self, capsys):
        assert main(["run", "--test", "MP+dmbs", "--axiomatic"]) == 0
        out = capsys.readouterr().out
        assert "forbidden" in out and "agree" in out

    def test_catalogue_command(self, capsys):
        assert main(["catalogue"]) == 0
        out = capsys.readouterr().out
        assert "MP+dmb+addr" in out

    def test_agreement_command(self, capsys):
        assert main(["agreement", "--max-tests", "6"]) == 0
        out = capsys.readouterr().out
        assert "agree" in out

    def test_run_litmus_file(self, tmp_path, capsys):
        litmus = tmp_path / "mp.litmus"
        litmus.write_text(
            "AArch64 MP-file\n"
            "{ 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x; }\n"
            " P0          | P1          ;\n"
            " MOV W0,#1   | LDR W0,[X1] ;\n"
            " STR W0,[X1] | LDR W2,[X3] ;\n"
            " STR W0,[X3] |             ;\n"
            "exists (1:X0=1 /\\ 1:X2=0)\n"
        )
        assert main(["run", "--file", str(litmus)]) == 0
        out = capsys.readouterr().out
        assert "MP-file" in out and "allowed" in out
