"""Tests for the evaluation workloads (§8): builders and safety checkers.

Exploration here uses the smallest interesting configurations so the suite
stays fast; the larger sweeps live in the benchmark harness.
"""

import pytest

from repro.lang import count_memory_accesses
from repro.lang.kinds import Arch
from repro.promising import ExploreConfig, explore
from repro.workloads import (
    FAMILIES,
    chase_lev,
    chase_lev_from_spec,
    ms_queue,
    ms_queue_from_spec,
    spinlock_asm,
    spinlock_cxx,
    spinlock_rust,
    spmc_queue,
    spsc_queue,
    ticket_lock,
    treiber_from_spec,
    treiber_stack,
)


def outcomes_of(workload, loop_bound=2):
    result = explore(workload.program, ExploreConfig(arch=Arch.ARM, loop_bound=loop_bound))
    assert not result.stats.truncated, workload.name
    assert len(result.outcomes) > 0
    return result.outcomes


class TestBuilders:
    def test_family_registry_is_complete(self):
        assert set(FAMILIES) == {"SLA", "SLC", "SLR", "PCS", "PCM", "TL", "STC", "STR", "DQ", "QU"}
        for family in FAMILIES.values():
            workload = family.builder()
            assert workload.program.n_threads >= 1
            assert workload.name

    def test_spec_parsers(self):
        assert treiber_from_spec("100-010-000").program.n_threads == 3
        assert ms_queue_from_spec("100-010-000").program.n_threads == 3
        assert chase_lev_from_spec("110-1-0").program.n_threads == 2
        with pytest.raises(ValueError):
            treiber_from_spec("1x0-000-000")
        with pytest.raises(ValueError):
            ms_queue_from_spec("10-01")

    def test_workload_sizes_scale_with_parameters(self):
        small = spinlock_cxx(2, 1)
        large = spinlock_cxx(2, 2)
        assert (count_memory_accesses(large.program.threads[0])
                > count_memory_accesses(small.program.threads[0]))

    def test_sla_records_assembly_lines(self):
        workload = spinlock_asm(2, 1)
        assert getattr(workload, "assembly_lines") > 10


class TestLocks:
    #: Tightened exploration bound: SLR with a single swap attempt has the
    #: identical outcome set to the default two attempts at a fraction of
    #: the state space — pinned by benchmarks/test_ablation_promise_first.py::
    #: test_tightened_unit_test_bounds_preserve_outcomes.  SLC and TL keep
    #: their default bounds.
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: spinlock_cxx(2, 1),
            lambda: spinlock_rust(2, 1, 1),
            lambda: ticket_lock(2, 1),
        ],
        ids=["SLC", "SLR", "TL"],
    )
    def test_mutual_exclusion_holds(self, factory):
        workload = factory()
        outcomes = outcomes_of(workload)
        assert workload.violations(outcomes) == []
        assert workload.check(outcomes)

    def test_assembly_spinlock_mutual_exclusion(self):
        workload = spinlock_asm(2, 1)
        outcomes = outcomes_of(workload)
        assert workload.violations(outcomes) == []


class TestDataStructures:
    def test_treiber_stack_is_safe(self):
        workload = treiber_stack(("p", "o"))
        assert workload.check(outcomes_of(workload))

    def test_treiber_stack_relaxed_push_is_buggy(self):
        workload = treiber_stack(("p", "o"), name="STC(rlx)", release_push=False)
        outcomes = outcomes_of(workload)
        assert workload.expected_violation
        assert workload.violations(outcomes), "the relaxed push must be caught"
        assert workload.check(outcomes)

    def test_ms_queue_is_safe(self):
        workload = ms_queue(("e", "d"))
        assert workload.check(outcomes_of(workload))

    def test_ms_queue_relaxed_publication_is_buggy(self):
        """The §8 case study: the relaxed queue publishes nodes before their data."""
        workload = ms_queue(("e", "d"), name="QU(rlx)", release_link=False)
        outcomes = outcomes_of(workload)
        violations = workload.violations(outcomes)
        assert violations, "the publication bug must be observable"
        # The violating outcome is precisely a dequeue of the uninitialised 0.
        assert any(v.reg(1, "rdeq1_0") == 0 for v in violations)

    def test_spsc_queue_is_safe(self):
        workload = spsc_queue(1, 1)
        assert workload.check(outcomes_of(workload))

    def test_spmc_queue_is_safe(self):
        workload = spmc_queue(1, (1,))
        assert workload.check(outcomes_of(workload))

    def test_chase_lev_push_steal_is_safe(self):
        workload = chase_lev("p", (1,))
        assert workload.check(outcomes_of(workload))

    def test_chase_lev_naming_from_spec(self):
        workload = chase_lev_from_spec("100-1-0")
        assert workload.name == "DQ-100-1-0"
        assert workload.program.n_threads == 2
